// Package timeseries generates the synthetic time-series database used by
// the DTW experiments. It follows the construction of the dataset of
// Vlachos et al. [32], which the paper reuses: a handful of seed sequences
// ("various real datasets were used as seeds"), each expanded into many
// variants by "incorporating small variations in the original patterns as
// well as additions of random compression and decompression in time".
// Sequences are multi-dimensional and normalized by subtracting the
// per-dimension mean.
//
// We synthesize the seeds themselves (cylinder/bell/funnel shapes, sinusoid
// mixtures, smoothed random walks, and an ECG-like spike train) because the
// original seed recordings are not distributed; the neighborhood structure
// the experiments rely on — a few pattern families, many time-warped
// variants of each — is created by the variant recipe, not by the specific
// seed waveforms.
package timeseries

import (
	"fmt"
	"math"
	"math/rand"

	"qse/internal/dtw"
)

// Config controls dataset generation.
type Config struct {
	// Length is the stored length of every sequence (default 128; the
	// dataset of [32] averages 500 — see DESIGN.md on scaling).
	Length int
	// Dims is the dimensionality of each sample (default 2, matching the
	// multi-dimensional trajectories of [32]).
	Dims int
	// Seeds is the number of seed patterns (default 16).
	Seeds int
	// AmplitudeNoise is the std-dev of the additive noise applied to
	// variants (default 0.05).
	AmplitudeNoise float64
	// WarpStrength in (0,1) controls how strongly variants are compressed
	// or decompressed in time (default 0.25).
	WarpStrength float64
	// WarpSegments is the number of piecewise time-warp segments
	// (default 4).
	WarpSegments int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Length:         128,
		Dims:           2,
		Seeds:          16,
		AmplitudeNoise: 0.05,
		WarpStrength:   0.25,
		WarpSegments:   4,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Length == 0 {
		c.Length = d.Length
	}
	if c.Dims == 0 {
		c.Dims = d.Dims
	}
	if c.Seeds == 0 {
		c.Seeds = d.Seeds
	}
	if c.AmplitudeNoise == 0 {
		c.AmplitudeNoise = d.AmplitudeNoise
	}
	if c.WarpStrength == 0 {
		c.WarpStrength = d.WarpStrength
	}
	if c.WarpSegments == 0 {
		c.WarpSegments = d.WarpSegments
	}
}

// Generator produces seed patterns and their variants.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	seeds []dtw.Series
}

// NewGenerator builds a Generator with cfg (zero fields take defaults) and
// synthesizes the seed patterns immediately so that SeedCount is stable.
func NewGenerator(cfg Config, rng *rand.Rand) *Generator {
	cfg.fillDefaults()
	g := &Generator{cfg: cfg, rng: rng}
	g.seeds = make([]dtw.Series, cfg.Seeds)
	for i := range g.seeds {
		g.seeds[i] = g.makeSeed(i)
	}
	return g
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// SeedCount returns the number of seed patterns.
func (g *Generator) SeedCount() int { return len(g.seeds) }

// Seed returns seed pattern i (a defensive copy).
func (g *Generator) Seed(i int) dtw.Series { return g.seeds[i].Clone() }

// makeSeed synthesizes one seed pattern, cycling through four families.
func (g *Generator) makeSeed(i int) dtw.Series {
	n, d := g.cfg.Length, g.cfg.Dims
	s := make(dtw.Series, n)
	for t := range s {
		s[t] = make([]float64, d)
	}
	for k := 0; k < d; k++ {
		var wave []float64
		switch i % 4 {
		case 0:
			wave = cylinderBellFunnel(g.rng, n, i/4%3)
		case 1:
			wave = sinusoidMixture(g.rng, n)
		case 2:
			wave = smoothedRandomWalk(g.rng, n)
		default:
			wave = ecgLike(g.rng, n)
		}
		for t := range wave {
			s[t][k] = wave[t]
		}
	}
	return s.Normalize()
}

// cylinderBellFunnel produces the classic CBF shapes: a plateau (cylinder),
// a ramp up (bell), or a ramp down (funnel) over a random support interval.
func cylinderBellFunnel(rng *rand.Rand, n, kind int) []float64 {
	a := int(float64(n) * (0.15 + 0.15*rng.Float64()))
	b := int(float64(n) * (0.6 + 0.25*rng.Float64()))
	if b <= a {
		b = a + 1
	}
	amp := 1 + rng.Float64()
	out := make([]float64, n)
	for t := a; t < b && t < n; t++ {
		frac := float64(t-a) / float64(b-a)
		switch kind {
		case 0: // cylinder
			out[t] = amp
		case 1: // bell
			out[t] = amp * frac
		default: // funnel
			out[t] = amp * (1 - frac)
		}
	}
	return out
}

func sinusoidMixture(rng *rand.Rand, n int) []float64 {
	f1 := 1 + rng.Float64()*3
	f2 := 4 + rng.Float64()*6
	a2 := 0.2 + rng.Float64()*0.4
	ph1, ph2 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	out := make([]float64, n)
	for t := range out {
		x := float64(t) / float64(n) * 2 * math.Pi
		out[t] = math.Sin(f1*x+ph1) + a2*math.Sin(f2*x+ph2)
	}
	return out
}

func smoothedRandomWalk(rng *rand.Rand, n int) []float64 {
	raw := make([]float64, n)
	v := 0.0
	for t := range raw {
		v += rng.NormFloat64() * 0.3
		raw[t] = v
	}
	// Moving-average smoothing, window 5.
	out := make([]float64, n)
	for t := range out {
		var sum float64
		var cnt int
		for j := t - 2; j <= t+2; j++ {
			if j >= 0 && j < n {
				sum += raw[j]
				cnt++
			}
		}
		out[t] = sum / float64(cnt)
	}
	return out
}

func ecgLike(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	period := n/4 + rng.Intn(n/4)
	offset := rng.Intn(period)
	for t := range out {
		phase := (t + offset) % period
		switch {
		case phase == 0:
			out[t] = 2.5 // R spike
		case phase == 1:
			out[t] = -0.8 // S dip
		case phase >= period/2 && phase < period/2+period/8:
			out[t] = 0.4 // T bump
		}
	}
	return out
}

// Variant produces a random variation of seed i: piecewise-linear random
// time compression/decompression, small amplitude noise, then resampling
// back to the configured length and mean normalization.
func (g *Generator) Variant(i int) (dtw.Series, error) {
	if i < 0 || i >= len(g.seeds) {
		return nil, fmt.Errorf("timeseries: seed %d out of range [0,%d)", i, len(g.seeds))
	}
	s := g.timeWarp(g.seeds[i])
	for t := range s {
		for k := range s[t] {
			s[t][k] += g.rng.NormFloat64() * g.cfg.AmplitudeNoise
		}
	}
	return s.Normalize(), nil
}

// timeWarp applies random compression/decompression: the time axis is cut
// into WarpSegments pieces, each stretched by a random factor in
// [1-WarpStrength, 1+WarpStrength], and the result is resampled to the
// configured length.
func (g *Generator) timeWarp(s dtw.Series) dtw.Series {
	segs := g.cfg.WarpSegments
	n := len(s)
	bounds := make([]int, segs+1)
	for i := 0; i <= segs; i++ {
		bounds[i] = i * n / segs
	}
	var warped dtw.Series
	for i := 0; i < segs; i++ {
		piece := s[bounds[i]:bounds[i+1]]
		factor := 1 + (g.rng.Float64()*2-1)*g.cfg.WarpStrength
		newLen := int(math.Round(float64(len(piece)) * factor))
		if newLen < 2 {
			newLen = 2
		}
		warped = append(warped, dtw.Resample(piece, newLen)...)
	}
	return dtw.Resample(warped, g.cfg.Length)
}

// Dataset is a generated collection: every sequence carries the seed index
// it derives from, which plays the role of a class label in tests.
type Dataset struct {
	Series []dtw.Series
	SeedOf []int
}

// GenerateDataset produces n variants with seeds assigned round-robin, so
// every seed family is represented nearly equally (as in [32], where every
// real seed contributes multiple copies).
func (g *Generator) GenerateDataset(n int) (*Dataset, error) {
	if n < 0 {
		return nil, fmt.Errorf("timeseries: negative dataset size %d", n)
	}
	ds := &Dataset{
		Series: make([]dtw.Series, n),
		SeedOf: make([]int, n),
	}
	for i := 0; i < n; i++ {
		seed := i % len(g.seeds)
		v, err := g.Variant(seed)
		if err != nil {
			return nil, err
		}
		ds.Series[i] = v
		ds.SeedOf[i] = seed
	}
	return ds, nil
}
