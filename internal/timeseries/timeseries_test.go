package timeseries

import (
	"math"
	"math/rand"
	"testing"

	"qse/internal/dtw"
)

func TestGeneratorBasics(t *testing.T) {
	g := NewGenerator(Config{}, rand.New(rand.NewSource(1)))
	cfg := g.Config()
	if cfg.Length != 128 || cfg.Dims != 2 || cfg.Seeds != 16 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if g.SeedCount() != 16 {
		t.Fatalf("SeedCount = %d", g.SeedCount())
	}
	for i := 0; i < g.SeedCount(); i++ {
		s := g.Seed(i)
		if len(s) != cfg.Length {
			t.Fatalf("seed %d length = %d", i, len(s))
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d invalid: %v", i, err)
		}
		if s.Dims() != cfg.Dims {
			t.Fatalf("seed %d dims = %d", i, s.Dims())
		}
	}
}

func TestSeedIsDefensiveCopy(t *testing.T) {
	g := NewGenerator(Config{}, rand.New(rand.NewSource(1)))
	s := g.Seed(0)
	s[0][0] = 12345
	if g.Seed(0)[0][0] == 12345 {
		t.Error("Seed should return a copy")
	}
}

func TestVariantBasics(t *testing.T) {
	g := NewGenerator(Config{}, rand.New(rand.NewSource(2)))
	v, err := g.Variant(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != g.Config().Length {
		t.Fatalf("variant length = %d", len(v))
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// Variants are mean-normalized per dimension.
	for k := 0; k < v.Dims(); k++ {
		var mean float64
		for t2 := range v {
			mean += v[t2][k]
		}
		mean /= float64(len(v))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("dim %d mean = %v, want 0", k, mean)
		}
	}
}

func TestVariantRange(t *testing.T) {
	g := NewGenerator(Config{}, rand.New(rand.NewSource(2)))
	if _, err := g.Variant(-1); err == nil {
		t.Error("negative seed should error")
	}
	if _, err := g.Variant(100); err == nil {
		t.Error("out-of-range seed should error")
	}
}

func TestVariantsDiffer(t *testing.T) {
	g := NewGenerator(Config{}, rand.New(rand.NewSource(3)))
	a, _ := g.Variant(0)
	b, _ := g.Variant(0)
	same := true
	for t2 := range a {
		for k := range a[t2] {
			if a[t2][k] != b[t2][k] {
				same = false
			}
		}
	}
	if same {
		t.Error("two variants of the same seed should differ")
	}
}

func TestVariantClusterStructure(t *testing.T) {
	// The defining property of the [32] dataset: under constrained DTW,
	// variants of the same seed are much closer to each other than to
	// variants of other seeds. Without this, the retrieval experiments
	// would be meaningless.
	g := NewGenerator(Config{Seeds: 4, Length: 64}, rand.New(rand.NewSource(4)))
	const perSeed = 3
	var all []dtw.Series
	var seedOf []int
	for seed := 0; seed < 4; seed++ {
		for i := 0; i < perSeed; i++ {
			v, err := g.Variant(seed)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, v)
			seedOf = append(seedOf, seed)
		}
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := range all {
		for j := range all {
			if i == j {
				continue
			}
			d := dtw.Constrained(all[i], all[j], 0.1)
			if seedOf[i] == seedOf[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra*1.5 >= inter {
		t.Errorf("intra %.2f not well below inter %.2f", intra, inter)
	}
}

func TestGenerateDataset(t *testing.T) {
	g := NewGenerator(Config{Seeds: 5}, rand.New(rand.NewSource(5)))
	ds, err := g.GenerateDataset(23)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Series) != 23 || len(ds.SeedOf) != 23 {
		t.Fatalf("sizes %d %d", len(ds.Series), len(ds.SeedOf))
	}
	counts := make([]int, 5)
	for i, s := range ds.Series {
		if err := s.Validate(); err != nil {
			t.Fatalf("series %d: %v", i, err)
		}
		counts[ds.SeedOf[i]]++
	}
	// Round-robin: counts differ by at most 1.
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("seed assignment not balanced: %v", counts)
	}
	if _, err := g.GenerateDataset(-1); err == nil {
		t.Error("negative size should error")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := NewGenerator(Config{}, rand.New(rand.NewSource(7)))
	b := NewGenerator(Config{}, rand.New(rand.NewSource(7)))
	va, _ := a.Variant(3)
	vb, _ := b.Variant(3)
	for t2 := range va {
		for k := range va[t2] {
			if va[t2][k] != vb[t2][k] {
				t.Fatal("same RNG seed should give identical variants")
			}
		}
	}
}

func TestSeedFamiliesDistinct(t *testing.T) {
	// Different seeds should be DTW-distinguishable.
	g := NewGenerator(Config{Seeds: 8, Length: 64}, rand.New(rand.NewSource(8)))
	for i := 0; i < g.SeedCount(); i++ {
		for j := i + 1; j < g.SeedCount(); j++ {
			if d := dtw.Constrained(g.Seed(i), g.Seed(j), 0.1); d == 0 {
				t.Errorf("seeds %d and %d are identical", i, j)
			}
		}
	}
}

func TestCustomConfigRespected(t *testing.T) {
	g := NewGenerator(Config{Length: 50, Dims: 3, Seeds: 2}, rand.New(rand.NewSource(9)))
	v, err := g.Variant(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 50 || v.Dims() != 3 {
		t.Errorf("got %dx%d", len(v), v.Dims())
	}
}
