// Package datasets provides the named, seed-reproducible object spaces the
// command-line tools operate on. Every dataset is regenerated
// deterministically from (size, seed), which is what lets a saved model —
// whose candidate objects are stored as database indexes — be reloaded
// against an identical database in a later process.
package datasets

import (
	"fmt"

	"qse/internal/digits"
	"qse/internal/dtw"
	"qse/internal/shapecontext"
	"qse/internal/stats"
	"qse/internal/timeseries"
)

// Digits builds n synthetic digit images under the Shape Context distance,
// returning the extracted shapes and the distance function.
func Digits(n int, seed int64) ([]*shapecontext.Shape, func(a, b *shapecontext.Shape) float64, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("datasets: size %d", n)
	}
	gen := digits.NewGenerator(digits.Config{}, stats.NewRand(seed))
	ex := shapecontext.NewExtractor(shapecontext.Config{})
	ds, err := gen.GenerateBalancedDataset(n)
	if err != nil {
		return nil, nil, err
	}
	shapes, err := ex.ExtractAll(ds.Images)
	if err != nil {
		return nil, nil, err
	}
	return shapes, ex.Distance, nil
}

// DigitsImages builds the raw images (for datagen and visualization).
func DigitsImages(n int, seed int64) (*digits.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datasets: size %d", n)
	}
	gen := digits.NewGenerator(digits.Config{}, stats.NewRand(seed))
	return gen.GenerateBalancedDataset(n)
}

// Series builds n synthetic multi-dimensional time series under constrained
// DTW with the paper's delta = 0.10.
func Series(n int, seed int64) ([]dtw.Series, func(a, b dtw.Series) float64, error) {
	ds, err := SeriesDataset(n, seed)
	if err != nil {
		return nil, nil, err
	}
	dist := func(a, b dtw.Series) float64 { return dtw.Constrained(a, b, 0.10) }
	return ds.Series, dist, nil
}

// SeriesDataset builds the raw labeled dataset (for datagen).
func SeriesDataset(n int, seed int64) (*timeseries.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datasets: size %d", n)
	}
	gen := timeseries.NewGenerator(timeseries.Config{}, stats.NewRand(seed))
	return gen.GenerateDataset(n)
}
