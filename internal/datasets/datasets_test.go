package datasets

import (
	"testing"
)

func TestDigits(t *testing.T) {
	db, dist, err := Digits(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 30 {
		t.Fatalf("len = %d", len(db))
	}
	if d := dist(db[0], db[0]); d != 0 {
		t.Errorf("self distance %v", d)
	}
	if d := dist(db[0], db[1]); d <= 0 {
		t.Errorf("cross distance %v", d)
	}
	if _, _, err := Digits(0, 1); err == nil {
		t.Error("n=0 should error")
	}
}

func TestDigitsReproducible(t *testing.T) {
	a, distA, err := Digits(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Digits(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if d := distA(a[i], b[i]); d != 0 {
			t.Fatalf("object %d differs across regenerations (d=%v)", i, d)
		}
	}
}

func TestDigitsImages(t *testing.T) {
	ds, err := DigitsImages(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Images) != 25 || len(ds.Labels) != 25 {
		t.Fatalf("sizes %d/%d", len(ds.Images), len(ds.Labels))
	}
	if _, err := DigitsImages(-1, 1); err == nil {
		t.Error("negative n should error")
	}
}

func TestSeries(t *testing.T) {
	db, dist, err := Series(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 20 {
		t.Fatalf("len = %d", len(db))
	}
	if d := dist(db[0], db[0]); d != 0 {
		t.Errorf("self distance %v", d)
	}
	if d := dist(db[0], db[1]); d <= 0 {
		t.Errorf("cross distance %v", d)
	}
	if _, _, err := Series(0, 1); err == nil {
		t.Error("n=0 should error")
	}
}

func TestSeriesReproducible(t *testing.T) {
	a, _, err := Series(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Series(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for tt := range a[i] {
			for d := range a[i][tt] {
				if a[i][tt][d] != b[i][tt][d] {
					t.Fatal("series differ across regenerations")
				}
			}
		}
	}
}

func TestSeriesDataset(t *testing.T) {
	ds, err := SeriesDataset(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Series) != 12 || len(ds.SeedOf) != 12 {
		t.Fatalf("sizes %d/%d", len(ds.Series), len(ds.SeedOf))
	}
	if _, err := SeriesDataset(0, 3); err == nil {
		t.Error("n=0 should error")
	}
}
