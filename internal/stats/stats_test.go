package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileSimple(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		pct  float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.pct); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.pct, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	vals := []float64{0, 10}
	if got := Percentile(vals, 50); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(vals, 10); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Percentile(10) = %v, want 1", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	want := []float64{3, 1, 2}
	for i := range vals {
		if vals[i] != want[i] {
			t.Fatalf("Percentile mutated its input: %v", vals)
		}
	}
}

func TestPercentileSingleton(t *testing.T) {
	for _, pct := range []float64{0, 37, 100} {
		if got := Percentile([]float64{42}, pct); got != 42 {
			t.Errorf("Percentile(singleton, %v) = %v, want 42", pct, got)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	assertPanics(t, func() { Percentile(nil, 50) })
	assertPanics(t, func() { Percentile([]float64{1}, -1) })
	assertPanics(t, func() { Percentile([]float64{1}, 101) })
	assertPanics(t, func() { PercentileInt(nil, 50) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}

func TestPercentileIntCeiling(t *testing.T) {
	// 10 values 1..10. 90% of 10 queries -> need 9 successes -> value 9.
	vals := []int{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	if got := PercentileInt(vals, 90); got != 9 {
		t.Errorf("PercentileInt(90) = %d, want 9", got)
	}
	if got := PercentileInt(vals, 100); got != 10 {
		t.Errorf("PercentileInt(100) = %d, want 10", got)
	}
	if got := PercentileInt(vals, 0); got != 1 {
		t.Errorf("PercentileInt(0) = %d, want 1", got)
	}
	// 50% of 10 -> need 5 -> 5th smallest = 5.
	if got := PercentileInt(vals, 50); got != 5 {
		t.Errorf("PercentileInt(50) = %d, want 5", got)
	}
}

func TestPercentileIntPropertyCoverage(t *testing.T) {
	// Property: at least pct% of the values are <= the returned threshold.
	f := func(raw []int16, pctRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int, len(raw))
		for i, v := range raw {
			vals[i] = int(v)
		}
		pct := float64(pctRaw % 101)
		th := PercentileInt(vals, pct)
		count := 0
		for _, v := range vals {
			if v <= th {
				count++
			}
		}
		return float64(count) >= pct/100*float64(len(vals))-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileMatchesSortedVariant(t *testing.T) {
	f := func(raw []float64, pctRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pct := float64(pctRaw % 101)
		sorted := make([]float64, len(raw))
		copy(sorted, raw)
		sort.Float64s(sorted)
		return almostEqual(Percentile(raw, pct), PercentileSorted(sorted, pct), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic example is ~2.138.
	if !almostEqual(s.Stddev, 2.13809, 1e-4) {
		t.Errorf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Errorf("empty summary should be zero: %+v", s)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
	if !almostEqual(Median([]float64{5, 1, 3}), 3, 1e-12) {
		t.Error("Median wrong")
	}
	if !almostEqual(MedianAbs([]float64{-5, 1, 3}), 3, 1e-12) {
		t.Error("MedianAbs wrong")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := NewRand(7)
	got := SampleWithoutReplacement(rng, 10, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	// Full sample is a permutation.
	perm := SampleWithoutReplacement(rng, 4, 4)
	sort.Ints(perm)
	for i, v := range perm {
		if v != i {
			t.Fatalf("not a permutation: %v", perm)
		}
	}
	assertPanics(t, func() { SampleWithoutReplacement(rng, 3, 4) })
}

func TestSampleWithoutReplacementUniformish(t *testing.T) {
	// Each element of [0,4) should be picked roughly 1/2 the time when k=2.
	rng := NewRand(42)
	counts := make([]int, 4)
	const trials = 4000
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(rng, 4, 2) {
			counts[v]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if frac < 0.42 || frac > 0.58 {
			t.Errorf("element %d picked with frequency %.3f, want ~0.5", i, frac)
		}
	}
}

func TestArgMinMax(t *testing.T) {
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("empty should return -1")
	}
	xs := []float64{3, 1, 4, 1, 5}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Errorf("ArgMax = %d", ArgMax(xs))
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", got)
		}
	}
	assertPanics(t, func() { Linspace(0, 1, 1) })
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := NewRand(1)
	xs := []int{1, 2, 3, 4, 5, 6}
	Shuffle(rng, xs)
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i+1 {
			t.Fatalf("Shuffle lost elements: %v", xs)
		}
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(9), NewRand(9)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed should produce same stream")
		}
	}
}
