// Package stats provides small numeric helpers used across the repository:
// percentiles, running summaries, deterministic RNG construction, and
// sampling utilities. Everything is stdlib-only and allocation-conscious.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic *rand.Rand for the given seed. All
// stochastic components in this repository accept a *rand.Rand so that
// experiments are reproducible bit-for-bit.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Percentile returns the pct-th percentile (pct in [0,100]) of values using
// linear interpolation between closest ranks. It does not modify values.
// It panics if values is empty or pct is outside [0,100]; callers are
// expected to validate inputs on public API boundaries.
func Percentile(values []float64, pct float64) float64 {
	if len(values) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if pct < 0 || pct > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", pct))
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, pct)
}

// PercentileSorted is like Percentile but assumes values is already sorted
// ascending, avoiding the copy and sort.
func PercentileSorted(sorted []float64, pct float64) float64 {
	if len(sorted) == 0 {
		panic("stats: PercentileSorted of empty slice")
	}
	if pct < 0 || pct > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", pct))
	}
	return percentileSorted(sorted, pct)
}

func percentileSorted(sorted []float64, pct float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := pct / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileInt returns the smallest value v in values such that at least
// pct percent of values are <= v. This is the "ceiling" percentile used when
// the value is a count (e.g. the number of candidates p needed so that pct%
// of queries succeed): interpolation would be meaningless for counts.
func PercentileInt(values []int, pct float64) int {
	if len(values) == 0 {
		panic("stats: PercentileInt of empty slice")
	}
	if pct < 0 || pct > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", pct))
	}
	sorted := make([]int, len(values))
	copy(sorted, values)
	sort.Ints(sorted)
	// Number of queries that must succeed.
	need := int(math.Ceil(pct / 100 * float64(len(sorted))))
	if need <= 0 {
		return sorted[0]
	}
	return sorted[need-1]
}

// Summary holds simple descriptive statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
}

// Summarize computes a Summary of values. An empty input yields a zero
// Summary with N == 0.
func Summarize(values []float64) Summary {
	var s Summary
	s.N = len(values)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Mean returns the arithmetic mean of values, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Median returns the 50th percentile of values.
func Median(values []float64) float64 { return Percentile(values, 50) }

// MedianAbs returns the median of absolute values; it is the robust scale
// estimate used to normalize 1D embeddings before boosting.
func MedianAbs(values []float64) float64 {
	abs := make([]float64, len(values))
	for i, v := range values {
		abs[i] = math.Abs(v)
	}
	return Median(abs)
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n). It panics if k > n or either argument is negative.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: cannot sample %d from %d", k, n))
	}
	// Partial Fisher–Yates over an index slice.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Shuffle permutes xs in place using rng.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// ArgMin returns the index of the smallest value in xs, or -1 if empty.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest value in xs, or -1 if empty.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Clamp restricts v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
