// Package dtw implements Dynamic Time Warping over multi-dimensional time
// series: the unconstrained variant, the Sakoe–Chiba constrained variant
// used as the paper's exact distance for the time-series experiments
// ("constrained Dynamic Time Warping, with a warping length δ = 10% of the
// total length of the shortest sequence under comparison", after [32]), and
// the LB_Keogh lower bound used by the comparator index of [32].
//
// A Series is a [time][dimension] slice; the local cost between two samples
// is their Euclidean distance. DTW with any warping constraint is symmetric
// and non-negative but violates the triangle inequality, which is exactly
// why the paper needs embedding-based indexing for this space.
package dtw

import (
	"fmt"
	"math"
)

// Series is a multi-dimensional time series: Series[t] is the sample at
// time t; all samples must share the same dimensionality.
type Series [][]float64

// Dims returns the dimensionality of the series (0 for an empty series).
func (s Series) Dims() int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0])
}

// Validate checks the series is rectangular with at least one sample.
func (s Series) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("dtw: empty series")
	}
	d := len(s[0])
	if d == 0 {
		return fmt.Errorf("dtw: zero-dimensional samples")
	}
	for t, sample := range s {
		if len(sample) != d {
			return fmt.Errorf("dtw: ragged series: sample %d has %d dims, want %d", t, len(sample), d)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	for t, sample := range s {
		out[t] = append([]float64(nil), sample...)
	}
	return out
}

// Normalize returns a copy with the per-dimension mean subtracted — the
// normalization applied to the dataset of [32] ("normalized by subtracting
// the average value in each dimension").
func (s Series) Normalize() Series {
	out := s.Clone()
	if len(out) == 0 {
		return out
	}
	d := out.Dims()
	means := make([]float64, d)
	for _, sample := range out {
		for j, v := range sample {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(len(out))
	}
	for _, sample := range out {
		for j := range sample {
			sample[j] -= means[j]
		}
	}
	return out
}

func sampleDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// DTW returns the unconstrained dynamic time warping distance between a and
// b: the minimum, over all monotonic alignments, of the summed Euclidean
// distances of aligned samples.
func DTW(a, b Series) float64 {
	return dtwWindow(a, b, -1)
}

// Constrained returns the Sakoe–Chiba constrained DTW distance with warping
// window delta expressed as a fraction of the length of the shorter series
// (the paper uses delta = 0.10). The window is widened to |len(a)-len(b)|
// when necessary so an alignment always exists.
func Constrained(a, b Series, delta float64) float64 {
	if delta < 0 || delta > 1 {
		panic(fmt.Sprintf("dtw: delta %v out of [0,1]", delta))
	}
	short := len(a)
	if len(b) < short {
		short = len(b)
	}
	w := int(math.Ceil(delta * float64(short)))
	return ConstrainedWindow(a, b, w)
}

// ConstrainedWindow is Constrained with an explicit window w in samples.
func ConstrainedWindow(a, b Series, w int) float64 {
	if w < 0 {
		panic("dtw: negative window")
	}
	return dtwWindow(a, b, w)
}

// dtwWindow runs the DP. w < 0 means unconstrained. The effective window is
// max(w, |n-m|) so the corner cell is always reachable.
func dtwWindow(a, b Series, w int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == 0 && m == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if a.Dims() != b.Dims() {
		panic(fmt.Sprintf("dtw: dimensionality mismatch %d vs %d", a.Dims(), b.Dims()))
	}
	if w >= 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if w < diff {
			w = diff
		}
	}

	inf := math.Inf(1)
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		if w >= 0 {
			lo = i - w
			if lo < 1 {
				lo = 1
			}
			hi = i + w
			if hi > m {
				hi = m
			}
		}
		for j := 0; j <= m; j++ {
			curr[j] = inf
		}
		for j := lo; j <= hi; j++ {
			best := prev[j] // insertion
			if curr[j-1] < best {
				best = curr[j-1] // deletion
			}
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if math.IsInf(best, 1) {
				continue
			}
			curr[j] = best + sampleDist(a[i-1], b[j-1])
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// Envelope returns the running lower and upper envelopes of s over a window
// of w samples on each side: lower[t][d] = min over |j-t| <= w of s[j][d],
// and likewise for upper with max. It is the precomputation behind
// LB_Keogh.
func Envelope(s Series, w int) (lower, upper Series) {
	if w < 0 {
		panic("dtw: negative envelope window")
	}
	n := len(s)
	d := s.Dims()
	lower = make(Series, n)
	upper = make(Series, n)
	for t := 0; t < n; t++ {
		lo := make([]float64, d)
		up := make([]float64, d)
		for k := range lo {
			lo[k] = math.Inf(1)
			up[k] = math.Inf(-1)
		}
		jLo, jHi := t-w, t+w
		if jLo < 0 {
			jLo = 0
		}
		if jHi >= n {
			jHi = n - 1
		}
		for j := jLo; j <= jHi; j++ {
			for k := 0; k < d; k++ {
				v := s[j][k]
				if v < lo[k] {
					lo[k] = v
				}
				if v > up[k] {
					up[k] = v
				}
			}
		}
		lower[t] = lo
		upper[t] = up
	}
	return lower, upper
}

// LBKeogh returns the Keogh lower bound of the windowed DTW distance between
// query q and the series whose envelopes are (lower, upper), computed with
// the same window. All three series must have the same length and
// dimensionality. The bound is
//
//	sum_t sqrt( sum_d clip(q[t][d] outside [lower,upper])^2 )
//
// which never exceeds ConstrainedWindow(q, s, w) for the s that produced the
// envelopes (each q[t] is aligned to at least one sample within the window,
// and that sample lies inside the envelope in every dimension).
func LBKeogh(q, lower, upper Series) float64 {
	if len(q) != len(lower) || len(q) != len(upper) {
		panic(fmt.Sprintf("dtw: LBKeogh length mismatch %d/%d/%d", len(q), len(lower), len(upper)))
	}
	var total float64
	for t := range q {
		var sum float64
		for k := range q[t] {
			v := q[t][k]
			var d float64
			if v > upper[t][k] {
				d = v - upper[t][k]
			} else if v < lower[t][k] {
				d = lower[t][k] - v
			}
			sum += d * d
		}
		total += math.Sqrt(sum)
	}
	return total
}

// Resample returns s linearly resampled to n samples (n >= 1). It is used
// by the dataset generator (time compression/decompression keeps the stored
// length fixed) and by approximate filters that need equal-length inputs.
func Resample(s Series, n int) Series {
	if n < 1 {
		panic("dtw: Resample to n < 1")
	}
	if len(s) == 0 {
		return nil
	}
	d := s.Dims()
	out := make(Series, n)
	if len(s) == 1 {
		for t := range out {
			out[t] = append([]float64(nil), s[0]...)
		}
		return out
	}
	for t := 0; t < n; t++ {
		var pos float64
		if n > 1 {
			pos = float64(t) * float64(len(s)-1) / float64(n-1)
		}
		i := int(math.Floor(pos))
		frac := pos - float64(i)
		sample := make([]float64, d)
		if i+1 < len(s) {
			for k := 0; k < d; k++ {
				sample[k] = s[i][k]*(1-frac) + s[i+1][k]*frac
			}
		} else {
			copy(sample, s[len(s)-1])
		}
		out[t] = sample
	}
	return out
}
