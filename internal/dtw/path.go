package dtw

import (
	"fmt"
	"math"
)

// PathStep is one cell of a warping path: sample I of the first series
// aligned with sample J of the second.
type PathStep struct {
	I, J int
}

// Path returns the optimal warping path of the windowed DTW alignment
// (w < 0 for unconstrained; use the same windows as ConstrainedWindow) and
// its total cost. The path starts at (0, 0), ends at (len(a)-1, len(b)-1),
// and each step increments I, J, or both (monotonicity + continuity).
// Unlike the distance-only DP this keeps the full matrix, so it costs
// O(len(a)·len(b)) memory; use it for inspection and tests, not bulk
// retrieval.
func Path(a, b Series, w int) ([]PathStep, float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil, 0, fmt.Errorf("dtw: Path of empty series")
	}
	if a.Dims() != b.Dims() {
		return nil, 0, fmt.Errorf("dtw: dimensionality mismatch %d vs %d", a.Dims(), b.Dims())
	}
	if w >= 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if w < diff {
			w = diff
		}
	}

	inf := math.Inf(1)
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, m+1)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		if w >= 0 {
			if lo < i-w {
				lo = i - w
			}
			if hi > i+w {
				hi = i + w
			}
		}
		for j := lo; j <= hi; j++ {
			best := cost[i-1][j]
			if cost[i][j-1] < best {
				best = cost[i][j-1]
			}
			if cost[i-1][j-1] < best {
				best = cost[i-1][j-1]
			}
			if math.IsInf(best, 1) {
				continue
			}
			cost[i][j] = best + sampleDist(a[i-1], b[j-1])
		}
	}
	total := cost[n][m]
	if math.IsInf(total, 1) {
		return nil, 0, fmt.Errorf("dtw: no feasible alignment within window %d", w)
	}

	// Backtrack, preferring the diagonal on ties for canonical paths.
	var rev []PathStep
	i, j := n, m
	for i > 0 || j > 0 {
		rev = append(rev, PathStep{I: i - 1, J: j - 1})
		switch {
		case i == 1 && j == 1:
			i, j = 0, 0
		case i > 1 && j > 1 && cost[i-1][j-1] <= cost[i-1][j] && cost[i-1][j-1] <= cost[i][j-1]:
			i, j = i-1, j-1
		case i > 1 && (j == 1 || cost[i-1][j] <= cost[i][j-1]):
			i--
		default:
			j--
		}
	}
	// Reverse into forward order.
	path := make([]PathStep, len(rev))
	for k := range rev {
		path[k] = rev[len(rev)-1-k]
	}
	return path, total, nil
}
