package dtw

import (
	"math"
	"math/rand"
	"testing"
)

func TestPathEndpointsAndMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randSeries(rng, 3+rng.Intn(15), 2)
		b := randSeries(rng, 3+rng.Intn(15), 2)
		w := -1
		if trial%2 == 0 {
			w = rng.Intn(6)
		}
		path, total, err := Path(a, b, w)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != (PathStep{0, 0}) {
			t.Fatalf("path starts at %+v", path[0])
		}
		if last := path[len(path)-1]; last.I != len(a)-1 || last.J != len(b)-1 {
			t.Fatalf("path ends at %+v", last)
		}
		for k := 1; k < len(path); k++ {
			di := path[k].I - path[k-1].I
			dj := path[k].J - path[k-1].J
			if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
				t.Fatalf("invalid step %+v -> %+v", path[k-1], path[k])
			}
		}
		if total < 0 {
			t.Fatal("negative cost")
		}
	}
}

func TestPathCostMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := randSeries(rng, 4+rng.Intn(12), 1)
		b := randSeries(rng, 4+rng.Intn(12), 1)
		for _, w := range []int{-1, 0, 2, 5} {
			path, total, err := Path(a, b, w)
			if err != nil {
				t.Fatal(err)
			}
			var want float64
			if w < 0 {
				want = DTW(a, b)
			} else {
				want = ConstrainedWindow(a, b, w)
			}
			if math.Abs(total-want) > 1e-9 {
				t.Fatalf("path cost %v != distance %v (w=%d)", total, want, w)
			}
			// Recomputing the cost from the steps must agree.
			var recomputed float64
			for _, s := range path {
				recomputed += sampleDist(a[s.I], b[s.J])
			}
			if math.Abs(recomputed-total) > 1e-9 {
				t.Fatalf("recomputed %v != reported %v", recomputed, total)
			}
		}
	}
}

func TestPathIdentity(t *testing.T) {
	s := seq(1, 2, 3, 4)
	path, total, err := Path(s, s, -1)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("self cost %v", total)
	}
	if len(path) != 4 {
		t.Fatalf("self path %v", path)
	}
	for k, step := range path {
		if step.I != k || step.J != k {
			t.Fatalf("self path not diagonal: %v", path)
		}
	}
}

func TestPathShiftedPulse(t *testing.T) {
	a := seq(0, 1, 0, 0)
	b := seq(0, 0, 1, 0)
	path, total, err := Path(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("shifted pulse cost %v", total)
	}
	// The pulse samples must be aligned with each other.
	ok := false
	for _, s := range path {
		if s.I == 1 && s.J == 2 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("pulses not aligned: %v", path)
	}
}

func TestPathErrors(t *testing.T) {
	if _, _, err := Path(nil, seq(1), -1); err == nil {
		t.Error("empty series should error")
	}
	if _, _, err := Path(Series{{1, 2}}, Series{{1}}, -1); err == nil {
		t.Error("dims mismatch should error")
	}
}
