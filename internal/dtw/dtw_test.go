package dtw

import (
	"math"
	"math/rand"
	"testing"
)

func seq(vals ...float64) Series {
	s := make(Series, len(vals))
	for i, v := range vals {
		s[i] = []float64{v}
	}
	return s
}

func randSeries(rng *rand.Rand, n, d int) Series {
	s := make(Series, n)
	for t := range s {
		s[t] = make([]float64, d)
		for k := range s[t] {
			s[t][k] = rng.NormFloat64()
		}
	}
	return s
}

func TestDTWIdentical(t *testing.T) {
	s := seq(1, 2, 3, 4)
	if d := DTW(s, s); d != 0 {
		t.Errorf("DTW(s,s) = %v", d)
	}
	if d := Constrained(s, s, 0.1); d != 0 {
		t.Errorf("cDTW(s,s) = %v", d)
	}
}

func TestDTWKnownSmall(t *testing.T) {
	a := seq(0, 0, 1, 2)
	b := seq(0, 1, 2)
	// Optimal alignment: (0,0)(0,0)(1,1)(2,2) -> cost 0.
	if d := DTW(a, b); d != 0 {
		t.Errorf("DTW = %v, want 0", d)
	}
	c := seq(0, 3)
	// Align 0-0, then 3 vs {0}: best is |3-0|=3? path must end at (2,2):
	// with b=(0,3): alignment (0,0)(3,3) cost 0.
	if d := DTW(seq(0, 3), c); d != 0 {
		t.Errorf("DTW = %v, want 0", d)
	}
	// Genuinely different: constant vs constant.
	if d := DTW(seq(0, 0, 0), seq(1, 1)); d != 3 {
		t.Errorf("DTW = %v, want 3", d)
	}
}

func TestDTWShiftTolerance(t *testing.T) {
	// DTW absorbs a time shift that Euclidean distance cannot.
	a := seq(0, 0, 1, 1, 0, 0, 0)
	b := seq(0, 0, 0, 1, 1, 0, 0)
	if d := DTW(a, b); d != 0 {
		t.Errorf("DTW of shifted pulse = %v, want 0", d)
	}
}

func TestDTWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randSeries(rng, 3+rng.Intn(20), 2)
		b := randSeries(rng, 3+rng.Intn(20), 2)
		if d1, d2 := DTW(a, b), DTW(b, a); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("not symmetric: %v vs %v", d1, d2)
		}
		if d1, d2 := Constrained(a, b, 0.1), Constrained(b, a, 0.1); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("constrained not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestConstrainedGEUnconstrained(t *testing.T) {
	// Shrinking the warping window can only increase the distance.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := randSeries(rng, 10+rng.Intn(20), 2)
		b := randSeries(rng, 10+rng.Intn(20), 2)
		free := DTW(a, b)
		prev := math.Inf(1)
		for _, w := range []int{0, 1, 2, 4, 8, 100} {
			d := ConstrainedWindow(a, b, w)
			if d < free-1e-9 {
				t.Fatalf("window %d: %v < unconstrained %v", w, d, free)
			}
			if d > prev+1e-9 {
				t.Fatalf("window %d: distance increased when window grew: %v > %v", w, d, prev)
			}
			prev = d
		}
	}
}

func TestConstrainedLargeWindowEqualsDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSeries(rng, 15, 3)
	b := randSeries(rng, 18, 3)
	if d1, d2 := ConstrainedWindow(a, b, 100), DTW(a, b); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("wide window %v != unconstrained %v", d1, d2)
	}
}

func TestConstrainedWindowZeroIsLockstep(t *testing.T) {
	a := seq(0, 1, 2)
	b := seq(1, 2, 3)
	// Window 0 on equal lengths forces the diagonal: |0-1|+|1-2|+|2-3| = 3.
	if d := ConstrainedWindow(a, b, 0); d != 3 {
		t.Errorf("lockstep = %v, want 3", d)
	}
}

func TestConstrainedFeasibleOnUnequalLengths(t *testing.T) {
	a := seq(0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	b := seq(0, 0)
	if d := Constrained(a, b, 0.1); math.IsInf(d, 1) {
		t.Error("window should widen to keep alignment feasible")
	}
}

func TestDTWEmpty(t *testing.T) {
	if d := DTW(nil, nil); d != 0 {
		t.Errorf("DTW(nil,nil) = %v", d)
	}
	if d := DTW(seq(1), nil); !math.IsInf(d, 1) {
		t.Errorf("DTW(s,nil) = %v, want +Inf", d)
	}
}

func TestDTWDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	DTW(Series{{1, 2}}, Series{{1}})
}

func TestDeltaRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("delta > 1 should panic")
		}
	}()
	Constrained(seq(1), seq(1), 1.5)
}

func TestValidate(t *testing.T) {
	if err := (Series{}).Validate(); err == nil {
		t.Error("empty series should fail")
	}
	if err := (Series{{}}).Validate(); err == nil {
		t.Error("zero-dim should fail")
	}
	if err := (Series{{1}, {1, 2}}).Validate(); err == nil {
		t.Error("ragged should fail")
	}
	if err := (Series{{1, 2}, {3, 4}}).Validate(); err != nil {
		t.Errorf("valid series failed: %v", err)
	}
}

func TestNormalize(t *testing.T) {
	s := Series{{1, 10}, {3, 20}}
	n := s.Normalize()
	if n[0][0] != -1 || n[1][0] != 1 || n[0][1] != -5 || n[1][1] != 5 {
		t.Errorf("Normalize = %v", n)
	}
	// Original untouched.
	if s[0][0] != 1 {
		t.Error("Normalize mutated input")
	}
	// Idempotent-ish: normalizing a normalized series is a no-op.
	n2 := n.Normalize()
	for i := range n {
		for j := range n[i] {
			if math.Abs(n2[i][j]-n[i][j]) > 1e-12 {
				t.Fatal("Normalize not idempotent")
			}
		}
	}
}

func TestEnvelope(t *testing.T) {
	s := seq(0, 1, 2, 3)
	lo, up := Envelope(s, 1)
	wantLo := []float64{0, 0, 1, 2}
	wantUp := []float64{1, 2, 3, 3}
	for t2 := range s {
		if lo[t2][0] != wantLo[t2] || up[t2][0] != wantUp[t2] {
			t.Errorf("envelope[%d] = (%v,%v), want (%v,%v)", t2, lo[t2][0], up[t2][0], wantLo[t2], wantUp[t2])
		}
	}
}

func TestEnvelopeContainsSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randSeries(rng, 30, 2)
	lo, up := Envelope(s, 3)
	for t2 := range s {
		for k := range s[t2] {
			if s[t2][k] < lo[t2][k] || s[t2][k] > up[t2][k] {
				t.Fatal("series escapes its own envelope")
			}
		}
	}
}

func TestLBKeoghIsLowerBound(t *testing.T) {
	// Core correctness property of the comparator baseline: LB_Keogh never
	// exceeds the windowed DTW distance (equal lengths, same window).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(25)
		d := 1 + rng.Intn(3)
		w := rng.Intn(6)
		a := randSeries(rng, n, d)
		b := randSeries(rng, n, d)
		lo, up := Envelope(b, w)
		lb := LBKeogh(a, lo, up)
		exact := ConstrainedWindow(a, b, w)
		if lb > exact+1e-9 {
			t.Fatalf("trial %d: LB %v > DTW %v (n=%d d=%d w=%d)", trial, lb, exact, n, d, w)
		}
	}
}

func TestLBKeoghSelfZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randSeries(rng, 20, 2)
	lo, up := Envelope(s, 2)
	if lb := LBKeogh(s, lo, up); lb != 0 {
		t.Errorf("LB of series against own envelope = %v", lb)
	}
}

func TestLBKeoghLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	LBKeogh(seq(1, 2), seq(1), seq(1))
}

func TestResample(t *testing.T) {
	s := seq(0, 1, 2, 3)
	up := Resample(s, 7)
	if len(up) != 7 {
		t.Fatalf("len = %d", len(up))
	}
	if up[0][0] != 0 || up[6][0] != 3 {
		t.Errorf("endpoints: %v %v", up[0][0], up[6][0])
	}
	if math.Abs(up[3][0]-1.5) > 1e-9 {
		t.Errorf("midpoint = %v, want 1.5", up[3][0])
	}
	down := Resample(s, 2)
	if down[0][0] != 0 || down[1][0] != 3 {
		t.Errorf("downsample endpoints: %v", down)
	}
	one := Resample(seq(5), 4)
	for _, v := range one {
		if v[0] != 5 {
			t.Errorf("constant resample = %v", one)
		}
	}
	if got := Resample(nil, 3); got != nil {
		t.Errorf("Resample(nil) = %v", got)
	}
}

func TestResampleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randSeries(rng, 12, 2)
	same := Resample(s, 12)
	for t2 := range s {
		for k := range s[t2] {
			if math.Abs(same[t2][k]-s[t2][k]) > 1e-9 {
				t.Fatal("Resample to same length should be identity")
			}
		}
	}
}

func TestCloneDeep(t *testing.T) {
	s := seq(1, 2)
	c := s.Clone()
	c[0][0] = 99
	if s[0][0] != 1 {
		t.Error("Clone not deep")
	}
}

func TestDTWTriangleViolationExists(t *testing.T) {
	// DTW is non-metric: exhibit a concrete triangle-inequality violation,
	// documenting why metric trees cannot index this space (Sec. 10).
	a := seq(0, 0)
	b := seq(0, 1, 1, 1, 1, 0)
	c := seq(1, 1)
	dac := DTW(a, c)
	dab := DTW(a, b)
	dbc := DTW(b, c)
	if dac <= dab+dbc {
		t.Skipf("no violation with this construction: %v <= %v + %v", dac, dab, dbc)
	}
}
