package dtw

import (
	"math"
	"testing"
)

// FuzzLBKeoghBound fuzzes the central correctness property of the
// comparator index: LB_Keogh never exceeds the windowed DTW distance.
// The fuzzer drives series lengths, values, and the window from raw bytes.
func FuzzLBKeoghBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255}, uint8(3))
	f.Add([]byte{10, 200, 30, 40, 50, 60}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, wRaw uint8) {
		if len(raw) < 4 || len(raw) > 64 || len(raw)%2 != 0 {
			t.Skip()
		}
		n := len(raw) / 2
		a := make(Series, n)
		b := make(Series, n)
		for i := 0; i < n; i++ {
			a[i] = []float64{float64(raw[i]) / 16}
			b[i] = []float64{float64(raw[n+i]) / 16}
		}
		w := int(wRaw % 8)
		lo, up := Envelope(b, w)
		lb := LBKeogh(a, lo, up)
		exact := ConstrainedWindow(a, b, w)
		if lb > exact+1e-9 {
			t.Fatalf("LB %v exceeds DTW %v (n=%d w=%d)", lb, exact, n, w)
		}
		// The bound of a series against its own envelope is zero.
		loA, upA := Envelope(a, w)
		if self := LBKeogh(a, loA, upA); self != 0 {
			t.Fatalf("self bound %v != 0", self)
		}
	})
}

// FuzzDTWWindowMonotone fuzzes the window-monotonicity of constrained DTW:
// a wider window can only decrease the distance, and the unconstrained
// distance is the limit.
func FuzzDTWWindowMonotone(f *testing.F) {
	f.Add([]byte{5, 1, 9, 2, 8, 3})
	f.Add([]byte{0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 4 || len(raw) > 48 {
			t.Skip()
		}
		n := len(raw) / 2
		a := make(Series, n)
		b := make(Series, len(raw)-n)
		for i := 0; i < n; i++ {
			a[i] = []float64{float64(raw[i])}
		}
		for i := n; i < len(raw); i++ {
			b[i-n] = []float64{float64(raw[i])}
		}
		free := DTW(a, b)
		prev := math.Inf(1)
		for _, w := range []int{0, 1, 3, 7, 100} {
			d := ConstrainedWindow(a, b, w)
			if d < free-1e-9 {
				t.Fatalf("window %d below unconstrained: %v < %v", w, d, free)
			}
			if d > prev+1e-9 {
				t.Fatalf("distance grew with window: %v > %v", d, prev)
			}
			prev = d
		}
		if math.Abs(prev-free) > 1e-9 {
			t.Fatalf("wide window %v != unconstrained %v", prev, free)
		}
	})
}
