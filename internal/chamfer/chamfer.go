// Package chamfer implements the chamfer distance between binary images
// (Barrow et al. [3]), the other non-metric image distance the paper names
// (Sec. 10: "many other commonly used distance measures, like the
// Kullback-Leibler distance, or the chamfer distance, are also
// non-metric"). It serves as a second, cheaper image distance for the digit
// space — useful for testing the method's domain independence on the same
// objects under a different oracle.
//
// The directed chamfer distance from edge set A to edge set B is the mean,
// over pixels of A, of the Euclidean distance to the nearest pixel of B; it
// is computed in O(pixels) with the exact Felzenszwalb–Huttenlocher
// distance transform. The symmetric distance is the mean of both
// directions. Neither version obeys the triangle inequality.
package chamfer

import (
	"math"

	"qse/internal/digits"
)

// DistanceTransform returns, for every pixel of a W x H grid, the Euclidean
// distance to the nearest "on" pixel (intensity >= threshold) of img, using
// the exact two-pass squared-distance transform of Felzenszwalb &
// Huttenlocher. If the image has no on pixels, every entry is +Inf.
func DistanceTransform(img *digits.Image, threshold float64) []float64 {
	w, h := img.W, img.H
	inf := math.Inf(1)
	// f holds squared distances; initialized to 0 on edge pixels, inf off.
	f := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if img.At(x, y) >= threshold {
				f[y*w+x] = 0
			} else {
				f[y*w+x] = inf
			}
		}
	}
	// 1D transforms: columns then rows.
	col := make([]float64, h)
	out := make([]float64, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			col[y] = f[y*w+x]
		}
		dt1d(col, out)
		for y := 0; y < h; y++ {
			f[y*w+x] = out[y]
		}
	}
	row := make([]float64, w)
	outR := make([]float64, w)
	for y := 0; y < h; y++ {
		copy(row, f[y*w:(y+1)*w])
		dt1d(row, outR)
		copy(f[y*w:(y+1)*w], outR)
	}
	for i, v := range f {
		f[i] = math.Sqrt(v)
	}
	return f
}

// dt1d computes the 1D squared-distance transform of f into out:
// out[p] = min_q (p-q)^2 + f[q], the lower envelope of parabolas.
func dt1d(f, out []float64) {
	n := len(f)
	v := make([]int, n)       // locations of parabolas in the envelope
	z := make([]float64, n+1) // boundaries between parabolas
	k := 0
	v[0] = 0
	z[0] = math.Inf(-1)
	z[1] = math.Inf(1)
	for q := 1; q < n; q++ {
		if math.IsInf(f[q], 1) {
			continue // parabola at infinite height never wins
		}
		for {
			var s float64
			if math.IsInf(f[v[k]], 1) {
				// Previous parabola is infinitely high: replace it.
				s = math.Inf(-1)
			} else {
				s = ((f[q] + float64(q*q)) - (f[v[k]] + float64(v[k]*v[k]))) / float64(2*q-2*v[k])
			}
			if s <= z[k] {
				k--
				if k < 0 {
					k = 0
					v[0] = q
					z[0] = math.Inf(-1)
					z[1] = math.Inf(1)
					break
				}
				continue
			}
			k++
			v[k] = q
			z[k] = s
			z[k+1] = math.Inf(1)
			break
		}
	}
	k = 0
	for p := 0; p < n; p++ {
		for z[k+1] < float64(p) {
			k++
		}
		if math.IsInf(f[v[k]], 1) {
			out[p] = math.Inf(1)
		} else {
			d := p - v[k]
			out[p] = float64(d*d) + f[v[k]]
		}
	}
}

// Directed returns the directed chamfer distance from a to b: the mean
// distance from each on-pixel of a to the nearest on-pixel of b. It is
// asymmetric. Images must have identical dimensions. If a has no on-pixels
// the result is 0; if b has none it is +Inf.
func Directed(a, b *digits.Image, threshold float64) float64 {
	dt := DistanceTransform(b, threshold)
	return directedWithTransform(a, dt, threshold)
}

func directedWithTransform(a *digits.Image, dtB []float64, threshold float64) float64 {
	var sum float64
	var count int
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			if a.At(x, y) >= threshold {
				sum += dtB[y*a.W+x]
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Distance returns the symmetric chamfer distance: the mean of the two
// directed distances. Still non-metric (no triangle inequality).
func Distance(a, b *digits.Image, threshold float64) float64 {
	return 0.5 * (Directed(a, b, threshold) + Directed(b, a, threshold))
}

// Oracle precomputes the distance transform of every image once and
// returns a distance function over indexes-free image handles, for use as
// a space.Distance. Precomputation makes each pairwise distance O(pixels)
// with no transform cost, mirroring how shapecontext precomputes features.
type Oracle struct {
	threshold float64
	transform map[*digits.Image][]float64
}

// NewOracle builds an Oracle for the given images.
func NewOracle(imgs []*digits.Image, threshold float64) *Oracle {
	o := &Oracle{
		threshold: threshold,
		transform: make(map[*digits.Image][]float64, len(imgs)),
	}
	for _, img := range imgs {
		o.transform[img] = DistanceTransform(img, threshold)
	}
	return o
}

// Distance is the symmetric chamfer distance using cached transforms where
// available (falling back to computing one on the fly for unseen images,
// e.g. fresh queries).
func (o *Oracle) Distance(a, b *digits.Image) float64 {
	dtA, ok := o.transform[a]
	if !ok {
		dtA = DistanceTransform(a, o.threshold)
	}
	dtB, ok := o.transform[b]
	if !ok {
		dtB = DistanceTransform(b, o.threshold)
	}
	return 0.5 * (directedWithTransform(a, dtB, o.threshold) + directedWithTransform(b, dtA, o.threshold))
}
