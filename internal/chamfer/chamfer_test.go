package chamfer

import (
	"math"
	"math/rand"
	"testing"

	"qse/internal/digits"
)

func imgWithPixels(w, h int, pts ...[2]int) *digits.Image {
	im := digits.NewImage(w, h)
	for _, p := range pts {
		im.Set(p[0], p[1], 1)
	}
	return im
}

// brute-force reference distance transform.
func dtRef(img *digits.Image, threshold float64) []float64 {
	on := img.OnPixels(threshold)
	out := make([]float64, img.W*img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			best := math.Inf(1)
			for _, p := range on {
				d := math.Hypot(float64(x-p[0]), float64(y-p[1]))
				if d < best {
					best = d
				}
			}
			out[y*img.W+x] = best
		}
	}
	return out
}

func TestDistanceTransformSinglePoint(t *testing.T) {
	im := imgWithPixels(5, 5, [2]int{2, 2})
	dt := DistanceTransform(im, 0.5)
	if dt[2*5+2] != 0 {
		t.Errorf("distance at the pixel itself = %v", dt[2*5+2])
	}
	if got := dt[2*5+4]; math.Abs(got-2) > 1e-9 {
		t.Errorf("distance 2 to the right = %v", got)
	}
	if got := dt[0]; math.Abs(got-2*math.Sqrt2) > 1e-9 {
		t.Errorf("corner distance = %v, want 2*sqrt(2)", got)
	}
}

func TestDistanceTransformMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		w := 3 + rng.Intn(12)
		h := 3 + rng.Intn(12)
		im := digits.NewImage(w, h)
		nOn := 1 + rng.Intn(6)
		for i := 0; i < nOn; i++ {
			im.Set(rng.Intn(w), rng.Intn(h), 1)
		}
		got := DistanceTransform(im, 0.5)
		want := dtRef(im, 0.5)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: dt[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestDistanceTransformEmptyImage(t *testing.T) {
	im := digits.NewImage(4, 4)
	dt := DistanceTransform(im, 0.5)
	for i, v := range dt {
		if !math.IsInf(v, 1) {
			t.Fatalf("dt[%d] = %v, want +Inf", i, v)
		}
	}
}

func TestDirectedBasics(t *testing.T) {
	a := imgWithPixels(6, 6, [2]int{1, 1})
	b := imgWithPixels(6, 6, [2]int{4, 1})
	if got := Directed(a, b, 0.5); math.Abs(got-3) > 1e-9 {
		t.Errorf("Directed = %v, want 3", got)
	}
	// Identical images: zero.
	if got := Directed(a, a, 0.5); got != 0 {
		t.Errorf("self = %v", got)
	}
	// Empty source: zero. Empty target: +Inf.
	empty := digits.NewImage(6, 6)
	if got := Directed(empty, b, 0.5); got != 0 {
		t.Errorf("empty source = %v", got)
	}
	if got := Directed(a, empty, 0.5); !math.IsInf(got, 1) {
		t.Errorf("empty target = %v", got)
	}
}

func TestDirectedIsAsymmetric(t *testing.T) {
	// One point vs a long bar: mean distance differs by direction — the
	// non-metric property the paper cites.
	a := imgWithPixels(10, 3, [2]int{0, 1})
	b := imgWithPixels(10, 3, [2]int{0, 1}, [2]int{4, 1}, [2]int{9, 1})
	dab := Directed(a, b, 0.5)
	dba := Directed(b, a, 0.5)
	if dab == dba {
		t.Errorf("expected asymmetry, both = %v", dab)
	}
	if dab != 0 {
		t.Errorf("a's single pixel lies on b: directed = %v, want 0", dab)
	}
}

func TestSymmetricDistance(t *testing.T) {
	a := imgWithPixels(8, 8, [2]int{1, 1})
	b := imgWithPixels(8, 8, [2]int{5, 1})
	if got, want := Distance(a, b, 0.5), 4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Distance = %v, want %v", got, want)
	}
	if d1, d2 := Distance(a, b, 0.5), Distance(b, a, 0.5); d1 != d2 {
		t.Errorf("symmetric distance differs by order: %v vs %v", d1, d2)
	}
}

func TestChamferSeparatesDigitClasses(t *testing.T) {
	g := digits.NewGenerator(digits.Config{}, rand.New(rand.NewSource(2)))
	const perClass = 3
	classes := []int{0, 1, 4}
	imgs := map[int][]*digits.Image{}
	for _, c := range classes {
		for i := 0; i < perClass; i++ {
			im, err := g.GenerateStyled(c, 0)
			if err != nil {
				t.Fatal(err)
			}
			imgs[c] = append(imgs[c], im)
		}
	}
	var intra, inter float64
	var nIntra, nInter int
	for _, c1 := range classes {
		for _, c2 := range classes {
			for i := 0; i < perClass; i++ {
				for j := 0; j < perClass; j++ {
					if c1 == c2 && i == j {
						continue
					}
					d := Distance(imgs[c1][i], imgs[c2][j], 0.5)
					if c1 == c2 {
						intra += d
						nIntra++
					} else {
						inter += d
						nInter++
					}
				}
			}
		}
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Errorf("chamfer does not separate classes: intra %.3f vs inter %.3f",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestOracleMatchesDirectComputation(t *testing.T) {
	g := digits.NewGenerator(digits.Config{}, rand.New(rand.NewSource(3)))
	var imgs []*digits.Image
	for c := 0; c < 5; c++ {
		im, err := g.Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, im)
	}
	o := NewOracle(imgs[:3], 0.5) // last two are "fresh queries"
	for i := range imgs {
		for j := range imgs {
			got := o.Distance(imgs[i], imgs[j])
			want := Distance(imgs[i], imgs[j], 0.5)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("oracle(%d,%d) = %v, direct = %v", i, j, got, want)
			}
		}
	}
}

func TestDt1dAllInfinite(t *testing.T) {
	f := []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	out := make([]float64, 3)
	dt1d(f, out)
	for i, v := range out {
		if !math.IsInf(v, 1) {
			t.Fatalf("out[%d] = %v, want +Inf", i, v)
		}
	}
}

func BenchmarkChamferDistance(b *testing.B) {
	g := digits.NewGenerator(digits.Config{}, rand.New(rand.NewSource(4)))
	a, err := g.Generate(3)
	if err != nil {
		b.Fatal(err)
	}
	c, err := g.Generate(8)
	if err != nil {
		b.Fatal(err)
	}
	o := NewOracle([]*digits.Image{a, c}, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Distance(a, c)
	}
}
