// Package experiments assembles the datasets and runs the paper's
// experiments (Figs. 1, 4, 5, 6; Table 1; the Sec. 9 speed-up comparison)
// at configurable scale. It is shared by cmd/qse-bench and the repository's
// top-level benchmarks, so the same code regenerates every figure whether
// invoked as a binary or as a testing.B benchmark.
//
// Scaling: the paper's datasets (60,000 MNIST images / 31,818 time series,
// |C| = |X_tr| = 5,000, 300,000 triples) are far beyond what a pure-Go
// laptop run can precompute, so the default scales here are reduced while
// preserving every structural property the method depends on; see
// DESIGN.md ("Substitutions"). The paper's own Fig. 6 shows the method's
// ordering survives this kind of down-scaling.
package experiments

import (
	"fmt"

	"qse/internal/core"
	"qse/internal/digits"
	"qse/internal/dtw"
	"qse/internal/eval"
	"qse/internal/fastmap"
	"qse/internal/shapecontext"
	"qse/internal/space"
	"qse/internal/stats"
	"qse/internal/timeseries"
)

// Scale sizes one experiment run.
type Scale struct {
	// DBSize and NumQueries size the dataset; queries are disjoint from
	// the database, as in the paper.
	DBSize, NumQueries int

	// Training budget (per variant).
	Rounds, Candidates, TrainingPool, Triples int
	EmbeddingsPerRound, Intervals, K1         int

	// FastMapDims is the baseline's dimensionality budget.
	FastMapDims int

	// Ks are the k values evaluated; Pcts the accuracy percentages.
	Ks   []int
	Pcts []float64

	// SCSamplePoints is the Shape Context sample-point count (digits only).
	SCSamplePoints int
	// SeriesLength, SeriesDims, SeriesSeeds size the time-series dataset.
	SeriesLength, SeriesDims, SeriesSeeds int
	// Delta is the cDTW warping fraction (paper: 0.10).
	Delta float64

	// CSVDir, when non-empty, makes the figure/table runners also write
	// their data as CSV files into this directory (one file per panel),
	// for external plotting.
	CSVDir string

	Seed int64
}

// SmallScale is sized for unit tests and testing.B benchmarks: tens of
// seconds end to end.
func SmallScale() Scale {
	return Scale{
		DBSize: 220, NumQueries: 40,
		// K1 follows the Sec. 6 guideline kmax * |Xtr| / |DB|.
		Rounds: 24, Candidates: 40, TrainingPool: 80, Triples: 2500,
		EmbeddingsPerRound: 30, Intervals: 5, K1: core.SuggestK1(50, 80, 220),
		FastMapDims:    12,
		Ks:             []int{1, 5, 10, 25, 50},
		Pcts:           []float64{90, 95, 99},
		SCSamplePoints: 24,
		SeriesLength:   64, SeriesDims: 2, SeriesSeeds: 12,
		Delta: 0.10,
		Seed:  1,
	}
}

// MediumScale is the cmd/qse-bench default: minutes per experiment,
// faithful curve shapes.
func MediumScale() Scale {
	return Scale{
		DBSize: 1200, NumQueries: 200,
		// K1 follows the Sec. 6 guideline kmax * |Xtr| / |DB|.
		Rounds: 96, Candidates: 150, TrainingPool: 250, Triples: 20000,
		EmbeddingsPerRound: 100, Intervals: 8, K1: core.SuggestK1(50, 250, 1200),
		FastMapDims:    32,
		Ks:             []int{1, 2, 5, 10, 20, 30, 40, 50},
		Pcts:           []float64{90, 95, 99},
		SCSamplePoints: 32,
		SeriesLength:   128, SeriesDims: 2, SeriesSeeds: 16,
		Delta: 0.10,
		Seed:  1,
	}
}

// Validate sanity-checks a scale.
func (sc Scale) Validate() error {
	if sc.DBSize < 20 || sc.NumQueries < 5 {
		return fmt.Errorf("experiments: dataset too small (%d db, %d queries)", sc.DBSize, sc.NumQueries)
	}
	if len(sc.Ks) == 0 || len(sc.Pcts) == 0 {
		return fmt.Errorf("experiments: no ks or pcts")
	}
	kmax := sc.Ks[len(sc.Ks)-1]
	if kmax >= sc.DBSize {
		return fmt.Errorf("experiments: kmax %d >= database %d", kmax, sc.DBSize)
	}
	return nil
}

func (sc Scale) trainOptions(mode core.Mode, sampling core.Sampling) core.Options {
	return core.Options{
		Mode:                  mode,
		Sampling:              sampling,
		Rounds:                sc.Rounds,
		NumCandidates:         sc.Candidates,
		NumTraining:           sc.TrainingPool,
		NumTriples:            sc.Triples,
		K1:                    sc.K1,
		EmbeddingsPerRound:    sc.EmbeddingsPerRound,
		IntervalsPerEmbedding: sc.Intervals,
		PivotFraction:         0.5,
		Seed:                  sc.Seed,
	}
}

// DigitsSpace builds the MNIST-substitute object space: a database and a
// disjoint query set of synthetic digit images under the Shape Context
// distance over precomputed shape features.
func DigitsSpace(sc Scale) (db, queries []*shapecontext.Shape, dist space.Distance[*shapecontext.Shape], err error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, nil, err
	}
	gen := digits.NewGenerator(digits.Config{}, stats.NewRand(sc.Seed))
	ex := shapecontext.NewExtractor(shapecontext.Config{SamplePoints: sc.SCSamplePoints})

	ds, err := gen.GenerateBalancedDataset(sc.DBSize)
	if err != nil {
		return nil, nil, nil, err
	}
	qs, err := gen.GenerateBalancedDataset(sc.NumQueries)
	if err != nil {
		return nil, nil, nil, err
	}
	db, err = ex.ExtractAll(ds.Images)
	if err != nil {
		return nil, nil, nil, err
	}
	queries, err = ex.ExtractAll(qs.Images)
	if err != nil {
		return nil, nil, nil, err
	}
	return db, queries, ex.Distance, nil
}

// SeriesSpace builds the time-series object space of [32]: a database and a
// disjoint query set of warped seed variants under constrained DTW.
func SeriesSpace(sc Scale) (db, queries []dtw.Series, dist space.Distance[dtw.Series], err error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, nil, err
	}
	gen := timeseries.NewGenerator(timeseries.Config{
		Length: sc.SeriesLength,
		Dims:   sc.SeriesDims,
		Seeds:  sc.SeriesSeeds,
	}, stats.NewRand(sc.Seed))
	ds, err := gen.GenerateDataset(sc.DBSize)
	if err != nil {
		return nil, nil, nil, err
	}
	qs, err := gen.GenerateDataset(sc.NumQueries)
	if err != nil {
		return nil, nil, nil, err
	}
	delta := sc.Delta
	dist = func(a, b dtw.Series) float64 { return dtw.Constrained(a, b, delta) }
	return ds.Series, qs.Series, dist, nil
}

// variantSpec names a trainable method variant.
type variantSpec struct {
	name     string
	mode     core.Mode
	sampling core.Sampling
}

var allVariants = []variantSpec{
	{"Ra-QI", core.QueryInsensitive, core.RandomTriples},
	{"Ra-QS", core.QuerySensitive, core.RandomTriples},
	{"Se-QI", core.QueryInsensitive, core.SelectiveTriples},
	{"Se-QS", core.QuerySensitive, core.SelectiveTriples},
}

// figureVariants omits Ra-QS, as the paper's figures do ("to avoid
// cluttering the figures, we omit the Ra-QS method").
var figureVariants = []variantSpec{
	{"Ra-QI", core.QueryInsensitive, core.RandomTriples},
	{"Se-QI", core.QueryInsensitive, core.SelectiveTriples},
	{"Se-QS", core.QuerySensitive, core.SelectiveTriples},
}

// Comparison holds evaluated methods over one dataset.
type Comparison struct {
	Methods []*eval.Method
	// Order lists method names in the paper's column order.
	Order []string
	// GroundTruthDistances is the exact-distance cost of building the
	// oracle (not charged to any method).
	GroundTruthDistances int64
}

// Compare trains the requested variants plus FastMap on (db, queries) and
// evaluates each across its dimensionality grid.
func Compare[T any](db, queries []T, dist space.Distance[T], sc Scale, variants []variantSpec) (*Comparison, error) {
	counter := space.NewCounter(dist)
	gt := space.NewGroundTruth(counter.Distance, queries, db)
	cmp := &Comparison{GroundTruthDistances: counter.Count()}

	fm, err := fastmap.Build(db, dist, fastmap.Options{Dims: sc.FastMapDims, Seed: sc.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: FastMap: %w", err)
	}
	mFM, err := eval.FastMapMethod("FastMap", fm, db, queries, gt, sc.Ks, eval.DefaultDimsGrid(fm.Dims()))
	if err != nil {
		return nil, err
	}
	cmp.Methods = append(cmp.Methods, mFM)
	cmp.Order = append(cmp.Order, "FastMap")

	for _, v := range variants {
		model, _, err := core.Train(db, dist, sc.trainOptions(v.mode, v.sampling))
		if err != nil {
			return nil, fmt.Errorf("experiments: training %s: %w", v.name, err)
		}
		m, err := eval.CoreMethod(v.name, model, db, queries, gt, sc.Ks, eval.DefaultDimsGrid(model.Dims()))
		if err != nil {
			return nil, fmt.Errorf("experiments: evaluating %s: %w", v.name, err)
		}
		cmp.Methods = append(cmp.Methods, m)
		cmp.Order = append(cmp.Order, v.name)
	}
	return cmp, nil
}
