package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"qse/internal/core"
	"qse/internal/eval"
	"qse/internal/fastmap"
	"qse/internal/vlachos"
)

// RunFig1 reproduces the Figure 1 toy experiment: failure rates of the 3D
// reference embedding vs its single coordinates on the unit square.
func RunFig1(w io.Writer, seed int64) error {
	res := eval.Fig1Toy(seed)
	fmt.Fprintf(w, "Figure 1 toy experiment (unit square, 20 db points, 3 references, 10 queries; %d triples)\n", res.Triples)
	fmt.Fprintf(w, "  global failure rates:  F (3D, L1) = %.1f%%", 100*res.GlobalF)
	for r := 0; r < 3; r++ {
		fmt.Fprintf(w, "   F^r%d = %.1f%%", r+1, 100*res.GlobalRef[r])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  restricted to the query planted next to each reference:")
	for r := 0; r < 3; r++ {
		fmt.Fprintf(w, "    q%d:  F = %.1f%%   F^r%d = %.1f%%\n",
			r+1, 100*res.NearF[r], r+1, 100*res.NearRef[r])
	}
	fmt.Fprintln(w, "  paper's draw: F = 23.5%; F^r = 39.2/36.4/26.6%; near q1: F = 11.6%, F^r1 = 5.8%")
	return nil
}

// RunFig4 reproduces Figure 4: digits + Shape Context, exact distance
// counts vs k at each accuracy percentage, for FastMap / Ra-QI / Se-QI /
// Se-QS.
func RunFig4(w io.Writer, sc Scale) error {
	db, queries, dist, err := DigitsSpace(sc)
	if err != nil {
		return err
	}
	cmp, err := Compare(db, queries, dist, sc, figureVariants)
	if err != nil {
		return err
	}
	return renderFigure(w, "Figure 4 — digits with Shape Context", cmp, sc)
}

// RunFig5 reproduces Figure 5: time series + constrained DTW.
func RunFig5(w io.Writer, sc Scale) error {
	db, queries, dist, err := SeriesSpace(sc)
	if err != nil {
		return err
	}
	cmp, err := Compare(db, queries, dist, sc, figureVariants)
	if err != nil {
		return err
	}
	return renderFigure(w, "Figure 5 — time series with constrained DTW", cmp, sc)
}

func renderFigure(w io.Writer, title string, cmp *Comparison, sc Scale) error {
	fmt.Fprintf(w, "%s\n(database %d, queries %d; entries are exact distance computations per query; brute force = %d)\n",
		title, sc.DBSize, sc.NumQueries, sc.DBSize)
	for _, pct := range sc.Pcts {
		series, err := eval.FigureData(cmp.Methods, sc.Ks, pct)
		if err != nil {
			return err
		}
		eval.RenderFigure(w, fmt.Sprintf("-- %.0f%% accuracy --", pct), series)
		eval.RenderChart(w, fmt.Sprintf("(log-scale chart, %.0f%% accuracy)", pct), series, 12)
		if sc.CSVDir != "" {
			name := fmt.Sprintf("%s-%.0fpct.csv", slugify(title), pct)
			if err := writeCSVFile(sc.CSVDir, name, func(f io.Writer) error {
				return eval.WriteSeriesCSV(f, series)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// slugify reduces a title to a filesystem-friendly token.
func slugify(title string) string {
	out := make([]rune, 0, len(title))
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '-' || r == '_':
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
		}
		if len(out) >= 40 {
			break
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	return string(out)
}

func writeCSVFile(dir, name string, write func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating CSV dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("experiments: creating CSV file: %w", err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

// RunTable1 reproduces Table 1 on both datasets: k × pct × all five
// methods (FastMap, Ra-QI, Ra-QS, Se-QI, Se-QS).
func RunTable1(w io.Writer, sc Scale) error {
	tableKs := []int{1, 10, 50}
	tablePcts := []float64{90, 95, 99, 100}
	scT := sc
	scT.Ks = intersect(tableKs, sc.DBSize)
	scT.Pcts = tablePcts

	dbD, qD, distD, err := DigitsSpace(scT)
	if err != nil {
		return err
	}
	cmpD, err := Compare(dbD, qD, distD, scT, allVariants)
	if err != nil {
		return err
	}
	rowsD, err := eval.TableData(cmpD.Methods, scT.Ks, scT.Pcts)
	if err != nil {
		return err
	}
	eval.RenderTable(w, fmt.Sprintf("Table 1a — digits with Shape Context (brute force = %d)", scT.DBSize), rowsD, cmpD.Order)
	if sc.CSVDir != "" {
		if err := writeCSVFile(sc.CSVDir, "table1a-digits.csv", func(f io.Writer) error {
			return eval.WriteTableCSV(f, rowsD, cmpD.Order)
		}); err != nil {
			return err
		}
	}

	dbS, qS, distS, err := SeriesSpace(scT)
	if err != nil {
		return err
	}
	cmpS, err := Compare(dbS, qS, distS, scT, allVariants)
	if err != nil {
		return err
	}
	rowsS, err := eval.TableData(cmpS.Methods, scT.Ks, scT.Pcts)
	if err != nil {
		return err
	}
	eval.RenderTable(w, fmt.Sprintf("Table 1b — time series with constrained DTW (brute force = %d)", scT.DBSize), rowsS, cmpS.Order)
	if sc.CSVDir != "" {
		if err := writeCSVFile(sc.CSVDir, "table1b-timeseries.csv", func(f io.Writer) error {
			return eval.WriteTableCSV(f, rowsS, cmpS.Order)
		}); err != nil {
			return err
		}
	}
	return nil
}

func intersect(ks []int, dbSize int) []int {
	out := make([]int, 0, len(ks))
	for _, k := range ks {
		if k < dbSize {
			out = append(out, k)
		}
	}
	return out
}

// RunFig6 reproduces Figure 6: "Quick Se-QS" (candidate/training pools and
// triple budget cut to a fraction of the regular run) vs regular Se-QS vs
// FastMap on the digits dataset at 95% accuracy.
func RunFig6(w io.Writer, sc Scale) error {
	db, queries, dist, err := DigitsSpace(sc)
	if err != nil {
		return err
	}

	quick := sc
	quick.Candidates = max(10, sc.Candidates/4)
	quick.TrainingPool = max(20, sc.TrainingPool/4)
	quick.Triples = max(500, sc.Triples/8)

	gt := eval.GroundTruthFor(dist, queries, db)

	var methods []*eval.Method

	fmModel, err := fastmap.Build(db, dist, fastmap.Options{Dims: sc.FastMapDims, Seed: sc.Seed})
	if err != nil {
		return err
	}
	mFM, err := eval.FastMapMethod("FastMap", fmModel, db, queries, gt, sc.Ks, eval.DefaultDimsGrid(fmModel.Dims()))
	if err != nil {
		return err
	}
	methods = append(methods, mFM)

	type cfgRow struct {
		name string
		s    Scale
	}
	for _, row := range []cfgRow{{"Quick Se-QS", quick}, {"Regular Se-QS", sc}} {
		model, report, err := core.Train(db, dist, row.s.trainOptions(core.QuerySensitive, core.SelectiveTriples))
		if err != nil {
			return err
		}
		m, err := eval.CoreMethod(row.name, model, db, queries, gt, sc.Ks, eval.DefaultDimsGrid(model.Dims()))
		if err != nil {
			return err
		}
		methods = append(methods, m)
		fmt.Fprintf(w, "%s: |C|=%d |Xtr|=%d triples=%d -> %d preprocessing distances\n",
			row.name, row.s.Candidates, row.s.TrainingPool, row.s.Triples, report.PreprocessedDistances)
	}

	series, err := eval.FigureData(methods, sc.Ks, 95)
	if err != nil {
		return err
	}
	eval.RenderFigure(w, "Figure 6 — preprocessing budget vs retrieval cost (95% accuracy, digits)", series)
	return nil
}

// RunSpeedup reproduces the Sec. 9 headline comparison on the time-series
// dataset: the proposed embedding (allowed to be approximate, tuned for
// 100% observed first-NN accuracy on the query set) vs the exact LB_Keogh
// filter-and-refine comparator of [32], vs brute force.
func RunSpeedup(w io.Writer, sc Scale) error {
	db, queries, dist, err := SeriesSpace(sc)
	if err != nil {
		return err
	}
	gt := eval.GroundTruthFor(dist, queries, db)

	model, _, err := core.Train(db, dist, sc.trainOptions(core.QuerySensitive, core.SelectiveTriples))
	if err != nil {
		return err
	}
	m, err := eval.CoreMethod("Se-QS", model, db, queries, gt, []int{1}, eval.DefaultDimsGrid(model.Dims()))
	if err != nil {
		return err
	}
	opt, err := m.OptimumFor(1, 100)
	if err != nil {
		return err
	}

	ix, err := vlachos.Build(db, sc.Delta)
	if err != nil {
		return err
	}
	var exactSum int
	for _, q := range queries {
		_, st, err := ix.Search(q, 1)
		if err != nil {
			return err
		}
		exactSum += st.ExactDTW
	}

	rows := []eval.SpeedupRow{
		{Method: "brute force", DistancesPerQ: float64(sc.DBSize), DBSize: sc.DBSize},
		{Method: "LB_Keogh [32]", DistancesPerQ: float64(exactSum) / float64(len(queries)), DBSize: sc.DBSize},
		{Method: "Se-QS", DistancesPerQ: float64(opt.Cost), DBSize: sc.DBSize},
	}
	fmt.Fprintf(w, "Speed-up comparison, time series, first-NN retrieved for 100%% of %d queries\n", len(queries))
	fmt.Fprintf(w, "Se-QS operating point: d = %d, p = %d\n", opt.Dims, opt.P)
	eval.RenderSpeedups(w, "", rows)
	fmt.Fprintln(w, "paper: Se-QS 51.2x (d=150, p=443) vs ~5x for [32] on 50 queries")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
