package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qse/internal/eval"
)

func tinyScale() Scale {
	sc := SmallScale()
	sc.DBSize = 150
	sc.NumQueries = 25
	sc.Rounds = 16
	sc.Candidates = 30
	sc.TrainingPool = 60
	sc.Triples = 1500
	sc.EmbeddingsPerRound = 25
	sc.Ks = []int{1, 5, 10}
	return sc
}

func TestScaleValidate(t *testing.T) {
	if err := SmallScale().Validate(); err != nil {
		t.Errorf("SmallScale invalid: %v", err)
	}
	if err := MediumScale().Validate(); err != nil {
		t.Errorf("MediumScale invalid: %v", err)
	}
	bad := SmallScale()
	bad.DBSize = 5
	if err := bad.Validate(); err == nil {
		t.Error("tiny db should fail")
	}
	bad = SmallScale()
	bad.Ks = []int{1000}
	if err := bad.Validate(); err == nil {
		t.Error("kmax >= db should fail")
	}
	bad = SmallScale()
	bad.Ks = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty ks should fail")
	}
}

func TestDigitsSpace(t *testing.T) {
	sc := tinyScale()
	db, queries, dist, err := DigitsSpace(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != sc.DBSize || len(queries) != sc.NumQueries {
		t.Fatalf("sizes %d/%d", len(db), len(queries))
	}
	if d := dist(db[0], db[1]); d < 0 {
		t.Errorf("negative distance %v", d)
	}
	if d := dist(db[0], db[0]); d != 0 {
		t.Errorf("self distance %v", d)
	}
}

func TestSeriesSpace(t *testing.T) {
	sc := tinyScale()
	db, queries, dist, err := SeriesSpace(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != sc.DBSize || len(queries) != sc.NumQueries {
		t.Fatalf("sizes %d/%d", len(db), len(queries))
	}
	if d := dist(db[0], db[0]); d != 0 {
		t.Errorf("self distance %v", d)
	}
	if d := dist(db[0], db[1]); d <= 0 {
		t.Errorf("distinct series distance %v", d)
	}
}

// The central reproduction assertion, on the cheap synthetic space: the
// learned methods must beat FastMap, and Se-QS must be at least as good as
// the original BoostMap (Ra-QI) for most (k, pct) settings — the paper's
// Figs. 4–5 ordering.
func TestCompareOrdering(t *testing.T) {
	sc := tinyScale()
	db, queries, dist, err := SeriesSpace(sc)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(db, queries, dist, sc, allVariants)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Methods) != 5 {
		t.Fatalf("expected 5 methods, got %d", len(cmp.Methods))
	}
	byName := map[string]*eval.Method{}
	for _, m := range cmp.Methods {
		byName[m.Name] = m
	}

	var seqsWins, comparisons int
	for _, k := range sc.Ks {
		for _, pct := range sc.Pcts {
			fm, err := byName["FastMap"].OptimumFor(k, pct)
			if err != nil {
				t.Fatal(err)
			}
			raqi, err := byName["Ra-QI"].OptimumFor(k, pct)
			if err != nil {
				t.Fatal(err)
			}
			seqs, err := byName["Se-QS"].OptimumFor(k, pct)
			if err != nil {
				t.Fatal(err)
			}
			comparisons++
			if seqs.Cost <= raqi.Cost {
				seqsWins++
			}
			// The boosted methods must never lose to FastMap badly.
			if seqs.Cost > 2*fm.Cost {
				t.Errorf("k=%d pct=%v: Se-QS (%d) much worse than FastMap (%d)", k, pct, seqs.Cost, fm.Cost)
			}
		}
	}
	if seqsWins*2 < comparisons {
		t.Errorf("Se-QS beat Ra-QI on only %d/%d settings", seqsWins, comparisons)
	}
}

func TestRunFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig1(&buf, 42); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "global failure rates", "q1", "paper's draw"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	var buf bytes.Buffer
	if err := RunFig5(&buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "FastMap", "Se-QS", "90% accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSpeedupTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	var buf bytes.Buffer
	if err := RunSpeedup(&buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Speed-up comparison", "LB_Keogh", "Se-QS", "brute force"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	var buf bytes.Buffer
	if err := RunFig6(&buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "Quick Se-QS", "Regular Se-QS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAblationsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	sc.Rounds = 8
	var buf bytes.Buffer
	if err := RunAblations(&buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ablations", "Se-QS (reference)", "query-insensitive", "pivot embeddings only", "K1 doubled"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	sc.DBSize = 100
	sc.NumQueries = 15
	sc.Rounds = 8
	sc.Ks = []int{1, 5}
	var buf bytes.Buffer
	if err := RunFig4(&buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "Shape Context", "Se-QS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	sc.DBSize = 100
	sc.NumQueries = 15
	sc.Rounds = 8
	sc.Ks = []int{1, 10}
	var buf bytes.Buffer
	if err := RunTable1(&buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1a", "Table 1b", "Ra-QS", "Se-QS", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		// Slugs are capped at 40 runes.
		"Figure 5 — time series with constrained DTW": "figure-5-time-series-with-constrained-dt",
		"ABC def": "abc-def",
		"--x--":   "x",
		"":        "",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	sc := tinyScale()
	sc.CSVDir = dir
	sc.Pcts = []float64{90}
	var buf bytes.Buffer
	if err := RunFig5(&buf, sc); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 CSV file, got %d", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "k,FastMap") {
		t.Errorf("CSV content unexpected:\n%s", data)
	}
}
