package experiments

import (
	"fmt"
	"io"

	"qse/internal/core"
	"qse/internal/eval"
	"qse/internal/space"
)

// RunAblations isolates the effect of each design choice DESIGN.md calls
// out, on the time-series dataset (chosen because cDTW is cheap enough to
// retrain many variants). Every row trains a fresh model differing from the
// Se-QS reference in exactly one knob and reports the optimal exact
// distance cost at k = 1 and k = 10 for 95% accuracy.
func RunAblations(w io.Writer, sc Scale) error {
	db, queries, dist, err := SeriesSpace(sc)
	if err != nil {
		return err
	}
	gt := space.NewGroundTruth(dist, queries, db)
	ks := []int{1, 10}

	type row struct {
		name   string
		mutate func(*core.Options)
	}
	rows := []row{
		{"Se-QS (reference)", func(o *core.Options) {}},
		{"query-insensitive (QI)", func(o *core.Options) { o.Mode = core.QueryInsensitive }},
		{"random triples (Ra)", func(o *core.Options) { o.Sampling = core.RandomTriples }},
		{"reference embeddings only", func(o *core.Options) { o.PivotFraction = 0 }},
		{"pivot embeddings only", func(o *core.Options) { o.PivotFraction = 1 }},
		{"no scale normalization", func(o *core.Options) { o.DisableScaleNorm = true }},
		{"K1 halved", func(o *core.Options) { o.K1 = max(1, o.K1/2) }},
		{"K1 doubled", func(o *core.Options) { o.K1 = 2 * o.K1 }},
	}

	fmt.Fprintf(w, "Ablations — time series, %d db / %d queries, k=1 and k=10 at 95%% accuracy\n", sc.DBSize, sc.NumQueries)
	fmt.Fprintf(w, "%-28s  %10s  %10s  %8s\n", "variant", "cost(k=1)", "cost(k=10)", "dims")
	for _, r := range rows {
		opts := sc.trainOptions(core.QuerySensitive, core.SelectiveTriples)
		r.mutate(&opts)
		if opts.K1+2 > opts.NumTraining {
			opts.K1 = opts.NumTraining - 2
		}
		model, _, err := core.Train(db, dist, opts)
		if err != nil {
			return fmt.Errorf("experiments: ablation %q: %w", r.name, err)
		}
		m, err := eval.CoreMethod(r.name, model, db, queries, gt, ks, eval.DefaultDimsGrid(model.Dims()))
		if err != nil {
			return err
		}
		o1, err := m.OptimumFor(1, 95)
		if err != nil {
			return err
		}
		o10, err := m.OptimumFor(10, 95)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s  %10d  %10d  %8d\n", r.name, o1.Cost, o10.Cost, model.Dims())
	}
	return nil
}
