package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qse_test_ops_total", "ops", Label{"kind", "read"})
	c2 := r.Counter("qse_test_ops_total", "ops", Label{"kind", "write"})
	g := r.Gauge("qse_test_size", "live objects")
	r.GaugeFunc("qse_test_uptime_seconds", "uptime", func() float64 { return 2.5 })
	c.Add(3)
	c2.Inc()
	g.Set(120)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP qse_test_ops_total ops
# TYPE qse_test_ops_total counter
qse_test_ops_total{kind="read"} 3
qse_test_ops_total{kind="write"} 1
# HELP qse_test_size live objects
# TYPE qse_test_size gauge
qse_test_size 120
# HELP qse_test_uptime_seconds uptime
# TYPE qse_test_uptime_seconds gauge
qse_test_uptime_seconds 2.5
`
	if b.String() != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramRenderExact(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qse_test_latency_seconds", "latency", []int64{1000, 2000, 4000}, 1e-9, Label{"endpoint", "search"})
	for _, v := range []int64{500, 1000, 1500, 3000, 9000} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteTo(&b)
	want := `# HELP qse_test_latency_seconds latency
# TYPE qse_test_latency_seconds histogram
qse_test_latency_seconds_bucket{endpoint="search",le="1e-06"} 2
qse_test_latency_seconds_bucket{endpoint="search",le="2e-06"} 3
qse_test_latency_seconds_bucket{endpoint="search",le="4e-06"} 4
qse_test_latency_seconds_bucket{endpoint="search",le="+Inf"} 5
qse_test_latency_seconds_sum{endpoint="search"} 1.5e-05
qse_test_latency_seconds_count{endpoint="search"} 5
`
	if b.String() != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestOnScrapeRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("qse_test_refresh", "refreshed at scrape")
	n := 0
	r.OnScrape(func() { n++; g.Set(float64(n * 10)) })
	var b strings.Builder
	r.WriteTo(&b)
	if !strings.Contains(b.String(), "qse_test_refresh 10") {
		t.Fatalf("first scrape: %s", b.String())
	}
	b.Reset()
	r.WriteTo(&b)
	if !strings.Contains(b.String(), "qse_test_refresh 20") {
		t.Fatalf("second scrape: %s", b.String())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1000, 2, 4)
	want := []int64{1000, 2000, 4000, 8000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 400, 800}, 1)
	// 100 observations uniform in (0, 100]: p50 should interpolate to
	// ~50 inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-50) > 1 {
		t.Fatalf("p50 = %v, want ~50", q)
	}
	if q := s.Quantile(0.99); math.Abs(q-99) > 1 {
		t.Fatalf("p99 = %v, want ~99", q)
	}
	// An observation beyond every bound clamps to the last finite bound.
	h2 := NewHistogram([]int64{100}, 1)
	h2.Observe(1_000_000)
	if q := h2.Snapshot().Quantile(0.5); q != 100 {
		t.Fatalf("overflow quantile = %v, want 100", q)
	}
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// parseExposition parses text exposition output into per-series values,
// failing the test on any malformed line. It returns sample name+labels
// -> value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	helped := make(map[string]bool)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition output", ln+1)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: bad TYPE line: %q", ln+1, line)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE before HELP for %s", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		switch valStr {
		case "+Inf":
			val = math.Inf(1)
		default:
			var err error
			if val, err = strconv.ParseFloat(valStr, 64); err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = key[:i]
			body := key[i+1 : len(key)-1]
			for _, pair := range strings.Split(body, ",") {
				lname, lval, found := strings.Cut(pair, "=")
				if !found || !strings.HasPrefix(lval, `"`) || !strings.HasSuffix(lval, `"`) {
					t.Fatalf("line %d: bad label pair %q", ln+1, pair)
				}
				if lname == "" {
					t.Fatalf("line %d: empty label name in %q", ln+1, pair)
				}
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
				break
			}
		}
		if typed[base] == "" {
			t.Fatalf("line %d: sample %s has no TYPE header", ln+1, name)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, key)
		}
		samples[key] = val
	}
	return samples
}

// TestExpositionUnderConcurrentTraffic hammers counters and histograms
// from many goroutines while scraping repeatedly, asserting on every
// scrape that the output parses and the histogram invariants hold:
// buckets are cumulative and monotone, _count equals the +Inf bucket,
// and _sum is consistent with the observed value range. Run under
// -race this also proves the registry's concurrency contract.
func TestExpositionUnderConcurrentTraffic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qse_t_reqs_total", "requests")
	bounds := ExpBuckets(10, 2, 8) // 10..1280
	var hists []*Histogram
	for _, ep := range []string{"search", "add", "stats"} {
		hists = append(hists, r.Histogram("qse_t_latency", "lat", bounds, 1, Label{"endpoint", ep}))
	}

	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				hists[i%len(hists)].Observe(int64(1 + (i*w)%2000))
			}
		}(w)
	}
	scrapes := 0
	go func() { wg.Wait(); close(stop) }()
	for {
		var b strings.Builder
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		scrapes++
		samples := parseExposition(t, b.String())
		for _, ep := range []string{"search", "add", "stats"} {
			sel := fmt.Sprintf(`qse_t_latency_bucket{endpoint=%q,le=`, ep)
			prev := -1.0
			var last float64
			n := 0
			for _, bd := range bounds {
				key := sel + `"` + formatValue(float64(bd)) + `"}`
				v, ok := samples[key]
				if !ok {
					t.Fatalf("scrape %d: missing bucket %s", scrapes, key)
				}
				if v < prev {
					t.Fatalf("scrape %d: bucket %s not cumulative: %v < %v", scrapes, key, v, prev)
				}
				prev, last, n = v, v, n+1
			}
			inf, ok := samples[sel+`"+Inf"}`]
			if !ok || inf < last {
				t.Fatalf("scrape %d: +Inf bucket missing or below last finite (%v < %v)", scrapes, inf, last)
			}
			count := samples[fmt.Sprintf(`qse_t_latency_count{endpoint=%q}`, ep)]
			if count != inf {
				t.Fatalf("scrape %d: _count %v != +Inf bucket %v", scrapes, count, inf)
			}
			sum := samples[fmt.Sprintf(`qse_t_latency_sum{endpoint=%q}`, ep)]
			// Every observation is in [1, 2000], so sum is bounded by
			// count(+in-flight slack) * 2000 and >= (count - slack) * 1.
			slack := float64(writers)
			if sum < 0 || sum > (count+slack)*2000 {
				t.Fatalf("scrape %d: _sum %v inconsistent with _count %v", scrapes, sum, count)
			}
		}
		select {
		case <-stop:
			// One final quiescent scrape with exact totals.
			var fb strings.Builder
			r.WriteTo(&fb)
			final := parseExposition(t, fb.String())
			if got := final["qse_t_reqs_total"]; got != writers*perWriter {
				t.Fatalf("final counter %v, want %d", got, writers*perWriter)
			}
			var total float64
			for _, ep := range []string{"search", "add", "stats"} {
				total += final[fmt.Sprintf(`qse_t_latency_count{endpoint=%q}`, ep)]
			}
			if total != writers*perWriter {
				t.Fatalf("final histogram counts sum to %v, want %d", total, writers*perWriter)
			}
			return
		default:
		}
	}
}

func TestSlowLogRetainsSlowest(t *testing.T) {
	l := NewSlowLog(3)
	for _, d := range []int64{50, 10, 80, 20, 90, 30, 70} {
		if l.WouldRecord(d) {
			l.Record(SlowEntry{DurationNanos: d, Payload: d})
		}
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	for i, want := range []int64{90, 80, 70} {
		if got[i].DurationNanos != want {
			t.Fatalf("slot %d = %d, want %d (snapshot %v)", i, got[i].DurationNanos, want, got)
		}
	}
	// Fast path: something below the floor must not be admitted.
	if l.WouldRecord(60) {
		t.Fatal("WouldRecord(60) true with floor 70")
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 2000; i++ {
				d := int64(w*2000 + i)
				if l.WouldRecord(d) {
					l.Record(SlowEntry{DurationNanos: d})
				}
			}
		}(w)
	}
	wg.Wait()
	got := l.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	// The global slowest (16000) must have survived, and the log must be
	// sorted descending.
	if got[0].DurationNanos != 16000 {
		t.Fatalf("slowest retained %d, want 16000", got[0].DurationNanos)
	}
	for i := 1; i < len(got); i++ {
		if got[i].DurationNanos > got[i-1].DurationNanos {
			t.Fatalf("snapshot not sorted: %v", got)
		}
	}
}
