// Package obs is the observability kernel: a dependency-free metrics
// registry — atomic counters, gauges, and log-bucketed histograms —
// that renders the Prometheus text exposition format (version 0.0.4),
// so every layer of the store can publish live signals without pulling
// a client library into the module.
//
// The design is built around one rule: recording a metric on a hot
// path costs atomics only — no locks, no allocation, no formatting.
// A Counter.Add is one atomic add; a Histogram.Observe is a bounded
// binary search over a fixed bucket table plus two atomic adds. All
// formatting, label rendering, and bucket accumulation happens at
// scrape time, on the scraper's goroutine. Registration (done once at
// startup) takes a mutex; after that the registry is read-only and
// scrapes run concurrently with recording.
//
// Histograms store int64 observations (the natural unit is
// nanoseconds) in exponentially spaced buckets and render through a
// scale factor, so a latency histogram observes nanoseconds internally
// and exposes seconds, the Prometheus base unit. Quantiles (p50/p90/
// p99 for /v1/stats) are estimated from the same buckets by linear
// interpolation, exactly like PromQL's histogram_quantile.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down (sizes, shares,
// durations-of-last-X). The zero value is ready to use and reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ExpBuckets returns n exponentially spaced histogram bucket bounds
// starting at first: first, first*factor, first*factor², … — the
// log-bucket layout every histogram in this repository uses. factor
// must be > 1 and first > 0.
func ExpBuckets(first int64, factor float64, n int) []int64 {
	if first <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets wants first > 0, factor > 1, n > 0")
	}
	out := make([]int64, n)
	f := float64(first)
	for i := range out {
		out[i] = int64(math.Round(f))
		f *= factor
	}
	return out
}

// Histogram counts int64 observations into fixed log-spaced buckets.
// bounds are inclusive upper bounds in ascending order; observations
// above the last bound land in an implicit +Inf bucket. Observe is
// wait-free: a binary search over the bound table (read-only after
// construction) and two atomic adds.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
	// scale converts stored units to exposition units at render time
	// (1e-9 turns nanoseconds into Prometheus-convention seconds).
	scale float64
}

// NewHistogram builds a histogram over the given ascending bounds.
// scale multiplies bounds and sums at render/quantile time; pass 1 for
// dimensionless observations.
func NewHistogram(bounds []int64, scale float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	if scale <= 0 {
		panic("obs: histogram scale must be > 0")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1), scale: scale}
}

// Observe records one value: the bucket whose bound is the first one
// >= v gains a count (the +Inf bucket when v exceeds every bound).
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistSnapshot is one consistent-enough read of a histogram: the
// per-bucket counts are each read once (so cumulative totals computed
// from them are monotone by construction), Count is their exact total,
// and Sum is read separately — under concurrent traffic it may lead or
// trail the counts by the handful of observations in flight.
type HistSnapshot struct {
	Bounds []int64
	Counts []uint64 // per-bucket (not cumulative); last is +Inf
	Sum    int64
	Count  uint64
	Scale  float64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts)), Scale: h.scale, Sum: h.sum.Load()}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations, in stored units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q < 1) in stored units by
// linear interpolation inside the bucket the quantile falls in — the
// same estimate PromQL's histogram_quantile gives. Observations in the
// +Inf bucket are attributed to the last finite bound (there is nothing
// to interpolate against). Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Counts)-1 {
			// +Inf bucket: clamp to the largest finite bound.
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		hi := float64(s.Bounds[i])
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Label is one name="value" pair on a series.
type Label struct{ Name, Value string }

// series is one labeled instance inside a family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing a metric name under one
// HELP/TYPE header, as the exposition format requires.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds registered metrics and renders them. Registration is
// mutex-guarded and meant for startup; recording and scraping are
// lock-free afterwards (scrapes take the mutex only to walk the family
// list, never blocking a recording hot path, which touches atomics
// only).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers a hook run at the start of every render — the
// place to refresh a block of related gauges from one consistent
// source (e.g. one store.Stats() call) instead of registering a
// callback per gauge.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// register adds a series to the named family, creating the family on
// first use and enforcing that one name keeps one type and help text.
func (r *Registry) register(name, help, typ string, s *series) {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range s.labels {
		if !validName(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic("obs: metric " + name + " registered as both " + f.typ + " and " + typ)
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{labels: labels, counter: c})
	return c
}

// Gauge registers and returns a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", &series{labels: labels, gaugeFn: fn})
}

// Histogram registers and returns a histogram series (see NewHistogram
// for bounds and scale).
func (r *Registry) Histogram(name, help string, bounds []int64, scale float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds, scale)
	r.register(name, help, "histogram", &series{labels: labels, hist: h})
	return h
}

// validName checks the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// formatValue renders a sample value the way Prometheus expects. The
// 12-significant-digit cap hides the float artifacts of scaling int64
// bounds (1000ns × 1e-9 is not exactly 1e-6 in float64) so bucket le
// values render as the clean numbers the buckets were designed with.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', 12, 64)
}

// writeLabels renders {a="x",b="y"}, with extra appended last (the
// histogram's le), escaping label values per the exposition format.
func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := len(labels) + len(extra)
	if all == 0 {
		return
	}
	b.WriteByte('{')
	n := 0
	write := func(l Label) {
		if n > 0 {
			b.WriteByte(',')
		}
		n++
		b.WriteString(l.Name)
		b.WriteString(`="`)
		for _, c := range l.Value {
			switch c {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(c)
			}
		}
		b.WriteByte('"')
	}
	for _, l := range labels {
		write(l)
	}
	for _, l := range extra {
		write(l)
	}
	b.WriteByte('}')
}

// WriteTo renders every registered metric in the text exposition
// format. Scrape hooks run first; the byte count and any writer error
// are returned (io.WriterTo).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	hooks := r.onScrape
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	// The family list is snapshotted after the hooks: a hook may register
	// a series it just discovered (e.g. a per-field gauge for a metadata
	// field first referenced since the last scrape), and it must render on
	// this scrape, not the next one.
	r.mu.Lock()
	fams := r.families
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(s.counter.Value(), 10))
				b.WriteByte('\n')
			case s.gauge != nil || s.gaugeFn != nil:
				v := 0.0
				if s.gauge != nil {
					v = s.gauge.Value()
				} else {
					v = s.gaugeFn()
				}
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(v))
				b.WriteByte('\n')
			case s.hist != nil:
				snap := s.hist.Snapshot()
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatValue(float64(snap.Bounds[i]) * snap.Scale)
					}
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, s.labels, Label{"le", le})
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(float64(snap.Sum) * snap.Scale))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(snap.Count, 10))
				b.WriteByte('\n')
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteTo(w)
}
