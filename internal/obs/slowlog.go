// Slow-query log: a fixed-capacity record of the N slowest operations
// seen since startup, each with a caller-supplied payload (stage
// breakdown, distance budget, request shape). The fast path — the
// overwhelmingly common case of a query that is NOT among the slowest
// ever seen — is one atomic load: the log publishes its admission
// threshold (the duration of its fastest retained entry once full), and
// callers only build a payload and take the mutex when they beat it.
// The lock is therefore contended at most N times plus once per
// new-slowest-query event, never per request.

package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// SlowEntry is one retained slow operation. Payload is whatever the
// caller wants surfaced for it (it ends up JSON-encoded by the debug
// endpoint), built only after admission, so the hot path never
// allocates for fast queries.
type SlowEntry struct {
	UnixNano      int64
	DurationNanos int64
	Payload       any
}

// SlowLog retains the n slowest entries ever recorded.
type SlowLog struct {
	// threshold is the admission bar: an entry must exceed it to have a
	// chance of being retained. It is 0 until the log fills, then the
	// smallest retained duration.
	threshold atomic.Int64

	mu      sync.Mutex
	entries []SlowEntry // unordered; min tracked via threshold
	cap     int
}

// NewSlowLog returns a log retaining the n slowest entries (n >= 1).
func NewSlowLog(n int) *SlowLog {
	if n < 1 {
		panic("obs: slow log capacity must be >= 1")
	}
	return &SlowLog{cap: n}
}

// WouldRecord reports whether an operation of the given duration beats
// the current admission threshold — the one-atomic-load fast path
// callers use to skip payload construction entirely for fast queries.
func (l *SlowLog) WouldRecord(durationNanos int64) bool {
	return durationNanos > l.threshold.Load()
}

// Record offers an entry. It re-checks admission under the lock (two
// racing recorders may both pass WouldRecord; the slower one wins the
// slot) and evicts the fastest retained entry when full.
func (l *SlowLog) Record(e SlowEntry) {
	if !l.WouldRecord(e.DurationNanos) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		if len(l.entries) == l.cap {
			l.threshold.Store(l.minLocked())
		}
		return
	}
	minI := 0
	for i := 1; i < len(l.entries); i++ {
		if l.entries[i].DurationNanos < l.entries[minI].DurationNanos {
			minI = i
		}
	}
	if e.DurationNanos <= l.entries[minI].DurationNanos {
		return // lost the race to an even slower entry
	}
	l.entries[minI] = e
	l.threshold.Store(l.minLocked())
}

// minLocked returns the smallest retained duration. Caller holds mu.
func (l *SlowLog) minLocked() int64 {
	m := l.entries[0].DurationNanos
	for _, e := range l.entries[1:] {
		if e.DurationNanos < m {
			m = e.DurationNanos
		}
	}
	return m
}

// Snapshot returns the retained entries, slowest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	l.mu.Lock()
	out := make([]SlowEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurationNanos > out[j].DurationNanos })
	return out
}
