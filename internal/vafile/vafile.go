// Package vafile implements the bound machinery of a VA-file (Weber,
// Schek & Blott, VLDB 1998 — the paper's reference [35]) over the
// repository's row-major flat vector blocks: per-dimension scalar
// quantization into equi-populated cells, a one-byte-per-dimension
// shadow code for every row, and per-query lookup tables that turn a
// row's codes into provable lower/upper bounds on its weighted L1
// distance to the query.
//
// The bounds stay valid under the query-sensitive weighted L1 of the
// paper's Eq. 11 because the distance decomposes per dimension: for a
// value v known to lie in cell c = [lo, hi] of dimension j,
//
//	w_j * max(lo - q_j, q_j - hi, 0)  <=  w_j*|q_j - v|  <=  w_j * max(|q_j - lo|, |q_j - hi|)
//
// (|q - .| is convex, so its extrema over an interval sit at the
// endpoints). Summing per-dimension table entries over a row's codes
// yields a lower and an upper bound on the full distance, which is what
// lets a scan rank rows by cheap byte lookups and touch the exact
// float64 block only for rows whose lower bound survives the running
// p-th smallest upper bound. The two-phase scan itself lives in
// internal/retrieval; this package owns the boundary construction, the
// encoding, and the table math, so their correctness can be
// property-tested and fuzzed in isolation.
//
// Boundaries are built once per base segment (at compaction) and reused
// across every delta append: a delta row is encoded against the base's
// boundaries, and a row holding a value outside the base's range is
// reported by Encode so the scan can exclude it from the bound argument
// (clamped codes would not bound such a row).
package vafile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"qse/internal/par"
)

// Bit-width limits: one byte per dimension caps cells at 2^8.
const (
	MinBits = 1
	MaxBits = 8
)

// PackedWidth reports whether bits is a packed storage width: one whose
// fields tile bytes exactly (bits divides 8), so a code never straddles
// a byte boundary and the scan kernels can extract it with one shift and
// mask. The boundary/table math works for any MinBits..MaxBits width;
// packed shadow storage is restricted to these.
func PackedWidth(bits int) bool {
	return bits == 1 || bits == 2 || bits == 4 || bits == 8
}

// PackedStride returns the bytes per row of a packed shadow block:
// ceil(dims*bits/8). At 4 bits two dimensions share a byte (low nibble =
// lower dimension); trailing pad bits in a row's last byte are always
// zero.
func PackedStride(dims, bits int) int {
	return (dims*bits + 7) / 8
}

// PackRow packs dims one-byte codes into dst (PackedStride bytes,
// little-endian within each byte: the code for dimension d lands at bit
// offset (d*bits)%8 of byte (d*bits)/8). Codes are masked to the field
// width, so out-of-range inputs cannot corrupt neighboring fields. bits
// must be a PackedWidth.
func PackRow(codes []uint8, bits int, dst []uint8) {
	if bits == 8 {
		copy(dst, codes)
		return
	}
	mask := uint8(1<<bits - 1)
	var cur uint8
	sh, di := 0, 0
	for _, c := range codes {
		cur |= (c & mask) << sh
		sh += bits
		if sh == 8 {
			dst[di] = cur
			di++
			cur, sh = 0, 0
		}
	}
	if sh > 0 {
		dst[di] = cur
	}
}

// UnpackRow is PackRow's inverse: it expands dims packed fields into one
// code byte per dimension. bits must be a PackedWidth.
func UnpackRow(packed []uint8, dims, bits int, dst []uint8) {
	if bits == 8 {
		copy(dst[:dims], packed)
		return
	}
	mask := uint8(1<<bits - 1)
	sh, i := 0, 0
	for d := 0; d < dims; d++ {
		dst[d] = (packed[i] >> sh) & mask
		sh += bits
		if sh == 8 {
			sh = 0
			i++
		}
	}
}

// Boundaries is one segment's per-dimension quantization grid: for each
// dimension, cells+1 non-decreasing boundary values whose consecutive
// pairs delimit the cells. Equi-populated construction (quantiles of the
// segment's own values) keeps cells tight where the data is dense, which
// is what makes the bounds selective. Immutable after construction.
type Boundaries struct {
	dims, bits, cells int
	// flat stores the grid row-major by dimension: dimension d's
	// boundaries are flat[d*(cells+1) : (d+1)*(cells+1)].
	flat []float64
}

// BuildBoundaries computes equi-populated cell boundaries from a
// row-major block of rows x dims values (the segment the shadow block
// will cover). Every value must be finite — embedded vectors always are,
// and a non-finite value would poison the bound math silently.
func BuildBoundaries(block []float64, rows, dims, bits int) (*Boundaries, error) {
	if bits < MinBits || bits > MaxBits {
		return nil, fmt.Errorf("vafile: bits = %d, want %d..%d", bits, MinBits, MaxBits)
	}
	if rows <= 0 || dims <= 0 {
		return nil, fmt.Errorf("vafile: %d rows x %d dims, want both > 0", rows, dims)
	}
	if len(block) != rows*dims {
		return nil, fmt.Errorf("vafile: block has %d values for %d rows x %d dims", len(block), rows, dims)
	}
	for _, v := range block {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("vafile: block contains a non-finite value")
		}
	}
	cells := 1 << bits
	b := &Boundaries{dims: dims, bits: bits, cells: cells, flat: make([]float64, dims*(cells+1))}
	// Each dimension is independent, so the column sorts fan out; the
	// result is identical to a serial build.
	par.For(dims, 4, func(lo, hi int) {
		column := make([]float64, rows)
		for d := lo; d < hi; d++ {
			for r := 0; r < rows; r++ {
				column[r] = block[r*dims+d]
			}
			sort.Float64s(column)
			bd := b.flat[d*(cells+1) : (d+1)*(cells+1)]
			for c := 0; c <= cells; c++ {
				bd[c] = column[c*(rows-1)/cells]
			}
			// Quantiles of a sorted column are already non-decreasing;
			// enforce it anyway so a future construction change cannot
			// silently hand the scan an invalid grid.
			for c := 1; c <= cells; c++ {
				if bd[c] < bd[c-1] {
					bd[c] = bd[c-1]
				}
			}
		}
	})
	return b, nil
}

// FromFlat reassembles Boundaries from a persisted grid (the counterpart
// of Flat). The grid is validated — length, finiteness, per-dimension
// monotonicity — so a damaged bundle section cannot smuggle an invalid
// grid into the scan.
func FromFlat(flat []float64, dims, bits int) (*Boundaries, error) {
	if bits < MinBits || bits > MaxBits {
		return nil, fmt.Errorf("vafile: bits = %d, want %d..%d", bits, MinBits, MaxBits)
	}
	if dims <= 0 {
		return nil, fmt.Errorf("vafile: dims = %d, want > 0", dims)
	}
	cells := 1 << bits
	if len(flat) != dims*(cells+1) {
		return nil, fmt.Errorf("vafile: boundary grid has %d values, want %d dims x %d", len(flat), dims, cells+1)
	}
	for d := 0; d < dims; d++ {
		bd := flat[d*(cells+1) : (d+1)*(cells+1)]
		for c, v := range bd {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("vafile: boundary grid contains a non-finite value in dim %d", d)
			}
			if c > 0 && v < bd[c-1] {
				return nil, fmt.Errorf("vafile: boundary grid decreases in dim %d at cell %d", d, c)
			}
		}
	}
	return &Boundaries{dims: dims, bits: bits, cells: cells, flat: flat}, nil
}

// Dims returns the grid's dimensionality.
func (b *Boundaries) Dims() int { return b.dims }

// Bits returns the quantization width in bits per dimension.
func (b *Boundaries) Bits() int { return b.bits }

// Cells returns the number of cells per dimension (2^Bits).
func (b *Boundaries) Cells() int { return b.cells }

// Flat returns the grid's backing storage (dims x (cells+1), row-major
// by dimension) — the persist shape FromFlat restores. Callers must not
// modify it.
func (b *Boundaries) Flat() []float64 { return b.flat }

// cellOf maps a value to its cell in dimension d. A value equal to a
// boundary belongs to the cell whose lower edge it is (the top boundary
// folds into the last cell), so every in-range value lands in a cell
// that contains it — the property the bound argument rests on.
func (b *Boundaries) cellOf(d int, v float64) int {
	bd := b.flat[d*(b.cells+1) : (d+1)*(b.cells+1)]
	c := sort.SearchFloat64s(bd, v)
	if c == len(bd) || bd[c] != v {
		c--
	}
	if c < 0 {
		c = 0
	} else if c >= b.cells {
		c = b.cells - 1
	}
	return c
}

// Encode quantizes one row into dst (Dims codes, one byte per
// dimension). It reports whether every value was inside its dimension's
// boundary range: the codes of an out-of-range (or non-finite) row are
// clamped and MUST NOT be used for bounds — the scan keeps such rows on
// the always-evaluate path instead.
func (b *Boundaries) Encode(row []float64, dst []uint8) bool {
	inRange := true
	for d := 0; d < b.dims; d++ {
		v := row[d]
		bd := b.flat[d*(b.cells+1) : (d+1)*(b.cells+1)]
		if !(v >= bd[0] && v <= bd[b.cells]) { // NaN fails both comparisons
			inRange = false
		}
		dst[d] = uint8(b.cellOf(d, v))
	}
	return inRange
}

// EncodeBlock encodes a row-major block of rows x Dims values into a
// fresh shadow block (rows x Dims codes). A block the boundaries were
// built from is in range by construction (the grid's edges are each
// column's min and max), so no in-range report is needed here.
func (b *Boundaries) EncodeBlock(block []float64, rows int) []uint8 {
	codes := make([]uint8, rows*b.dims)
	par.For(rows, 512, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b.Encode(block[r*b.dims:(r+1)*b.dims], codes[r*b.dims:(r+1)*b.dims])
		}
	})
	return codes
}

// EncodePacked is Encode writing directly into a packed row (PackedStride
// bytes) without materializing the one-byte-per-dimension form. The
// grid's Bits must be a PackedWidth. The in-range report matches Encode's
// exactly.
func (b *Boundaries) EncodePacked(row []float64, dst []uint8) bool {
	if b.bits == 8 {
		return b.Encode(row, dst)
	}
	inRange := true
	var cur uint8
	sh, di := 0, 0
	for d := 0; d < b.dims; d++ {
		v := row[d]
		bd := b.flat[d*(b.cells+1) : (d+1)*(b.cells+1)]
		if !(v >= bd[0] && v <= bd[b.cells]) { // NaN fails both comparisons
			inRange = false
		}
		cur |= uint8(b.cellOf(d, v)) << sh
		sh += b.bits
		if sh == 8 {
			dst[di] = cur
			di++
			cur, sh = 0, 0
		}
	}
	if sh > 0 {
		dst[di] = cur
	}
	return inRange
}

// EncodePackedBlock encodes a row-major block of rows x Dims values into
// a fresh packed shadow block (rows x PackedStride bytes). Like
// EncodeBlock, a block the boundaries were built from is in range by
// construction, so no report is needed.
func (b *Boundaries) EncodePackedBlock(block []float64, rows int) []uint8 {
	stride := PackedStride(b.dims, b.bits)
	packed := make([]uint8, rows*stride)
	par.For(rows, 512, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b.EncodePacked(block[r*b.dims:(r+1)*b.dims], packed[r*stride:(r+1)*stride])
		}
	})
	return packed
}

// Tables are one query's per-cell bound lookup tables: for dimension d
// and cell c, entry d*Cells+c bounds the weighted per-dimension distance
// w_d*|q_d - v| below (lb) or above (ub) for any v in the cell. Summing
// entries over a row's codes bounds the row's full weighted L1.
type Tables struct {
	dims, cells int
	lb, ub      []float64
	// lb16/ub16 mirror lb/ub as one fixed-size [16]float64 array per
	// dimension when the grid has at most 16 cells (bits <= 4). The
	// sub-byte scan kernels index them with a masked nibble/crumb/bit,
	// which the compiler can prove < 16 — the bounds check disappears
	// from the innermost loop. Entries past Cells are zero and never
	// read (a packed field cannot encode a code >= Cells).
	lb16, ub16 [][16]float64
	// mrel is reorderSlack(dims); inv is 1/(1-mrel), hoisting the
	// per-row division out of the screening loop (the one extra rounding
	// is far inside mrel's 4x safety factor).
	mrel, inv float64
}

// QueryTables builds the query's bound tables (2 x Dims x Cells floats,
// built once per query). It reports false — and the caller must fall
// back to the exact scan — when the query or its weights cannot support
// valid bounds: wrong width, a non-finite value, or a negative weight.
// A nil weights slice is the unweighted L1. Zero weights are fine: the
// dimension contributes nothing to either bound, exactly as it
// contributes nothing to the exact kernel.
func (b *Boundaries) QueryTables(qvec, weights []float64) (Tables, bool) {
	if len(qvec) != b.dims || (weights != nil && len(weights) != b.dims) {
		return Tables{}, false
	}
	t := Tables{
		dims:  b.dims,
		cells: b.cells,
		lb:    make([]float64, b.dims*b.cells),
		ub:    make([]float64, b.dims*b.cells),
	}
	for d := 0; d < b.dims; d++ {
		q := qvec[d]
		w := 1.0
		if weights != nil {
			w = weights[d]
		}
		if math.IsNaN(q) || math.IsInf(q, 0) || math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return Tables{}, false
		}
		bd := b.flat[d*(b.cells+1) : (d+1)*(b.cells+1)]
		lbRow := t.lb[d*b.cells : (d+1)*b.cells]
		ubRow := t.ub[d*b.cells : (d+1)*b.cells]
		// The distance to a cell is monotone in the cell's offset from the
		// query's own cell cq, so the table splits into three branch-free
		// runs. Below cq the whole cell sits at or below q (q >= bd[c+1]),
		// above cq at or above it (q <= bd[c]), so each difference is
		// non-negative and equals the |.| form computed cell-by-cell. For
		// cq itself the lower bound is 0 — exact when q lies inside the
		// cell, and still a valid (if loose) bound when an out-of-range q
		// was clamped into an edge cell; the upper bound max(q-lo, hi-q)
		// covers both the straddling and the clamped case, where the
		// farther edge's difference is the positive one.
		cq := b.cellOf(d, q)
		for c := 0; c < cq; c++ {
			lbRow[c] = w * (q - bd[c+1])
			ubRow[c] = w * (q - bd[c])
		}
		for c := cq + 1; c < b.cells; c++ {
			lbRow[c] = w * (bd[c] - q)
			ubRow[c] = w * (bd[c+1] - q)
		}
		ub := q - bd[cq]
		if hi := bd[cq+1] - q; hi > ub {
			ub = hi
		}
		lbRow[cq] = 0
		ubRow[cq] = w * ub
	}
	if b.cells <= 16 {
		t.lb16 = make([][16]float64, b.dims)
		t.ub16 = make([][16]float64, b.dims)
		for d := 0; d < b.dims; d++ {
			copy(t.lb16[d][:b.cells], t.lb[d*b.cells:(d+1)*b.cells])
			copy(t.ub16[d][:b.cells], t.ub[d*b.cells:(d+1)*b.cells])
		}
	}
	t.mrel = reorderSlack(b.dims)
	t.inv = 1 / (1 - t.mrel)
	return t, true
}

// reorderSlack is the relative error allowance applied when an n-term
// bound sum is accumulated in a different order than the exact kernel's
// sequential sum: 4x the first-order (n-1)*eps reordering bound, so a
// reordered lower bound discounted by it (or an upper bound padded by
// it) still brackets the sequentially-rounded distance.
func reorderSlack(n int) float64 {
	const eps = 2.220446049250313e-16 // 2^-52
	return 4 * eps * float64(n)
}

// Dims returns the tables' dimensionality (0 for the zero value).
func (t *Tables) Dims() int { return t.dims }

// Tab16 exposes the fixed-stride per-dimension tables (nil when the grid
// has more than 16 cells). The packed scan kernels in internal/retrieval
// consume them; callers must not modify them.
func (t *Tables) Tab16() (lb, ub [][16]float64) { return t.lb16, t.ub16 }

// Slack exposes the reordering allowance the row methods apply: any
// kernel that reassociates the per-dimension sum must discount a lower
// bound to s - s*mrel (equivalently compare s against bound*inv) and pad
// an upper bound to s + s*mrel, exactly as RowLowerBounded and RowUpper
// do.
func (t *Tables) Slack() (mrel, inv float64) { return t.mrel, t.inv }

// RowLower sums the lower-bound table over a row's codes: a provable
// lower bound on the row's weighted L1 distance to the query. codes must
// hold Dims in-range codes from Encode (an out-of-range row has no valid
// bounds).
func (t *Tables) RowLower(codes []uint8) float64 {
	lb, off := 0.0, 0
	for _, c := range codes {
		lb += t.lb[off+int(c)]
		off += t.cells
	}
	return lb
}

// RowLowerBounded is RowLower tuned for the hot screening loop: within
// reports whether the returned lower bound is <= bound.
//
// Two departures from RowLower, both preserving the bound's validity:
//
//   - The sum runs over four independent accumulators to break the
//     serial float-add dependency chain (the screening scan's actual
//     bottleneck). Reordering a sum changes its rounding, so the result
//     no longer term-by-term dominates the distance kernel's sequential
//     sum; validity is restored by discounting the classic reordering
//     error bound (~n*eps relative, applied with 4x slack) — a 1e-13
//     relative haircut that costs no measurable pruning power.
//   - Non-negative terms only grow the partial sum, so the scan aborts
//     every eight dimensions once the discounted partial already
//     crosses bound (lb = +Inf): the common excluded row touches a
//     fraction of its codes.
func (t *Tables) RowLowerBounded(codes []uint8, bound float64) (lb float64, within bool) {
	// s - s*mrel > bound <=> s > bound/(1-mrel): hoist the slack out of
	// the per-block exit check (inv caches the reciprocal).
	s, aborted := t.sumRow(t.lb, codes, bound*t.inv)
	if aborted {
		return math.Inf(1), false
	}
	lb = s - s*t.mrel
	if lb < 0 {
		lb = 0
	}
	return lb, lb <= bound
}

// sumRow sums one table entry per dimension over four accumulators,
// aborting once the partial sum exceeds stop (+Inf never aborts; the
// terms are non-negative, so the partial only grows). The 256-cell grid
// — every 8-bit shadow — takes the fast path: constant cell strides and
// byte-masked indices the compiler can prove in range, eight
// dimensions per step off a single 8-byte code load.
func (t *Tables) sumRow(tbl []float64, codes []uint8, stop float64) (float64, bool) {
	var s0, s1, s2, s3 float64
	n := len(codes)
	cells := t.cells
	off, d := 0, 0
	if cells == 256 {
		// The exit check (three serial adds and a branch) is a real
		// fraction of a group's cost, and the typical excluded row only
		// crosses the threshold in its last few groups — so the main loop
		// covers sixteen dimensions per check, falling back to one check
		// per group for a trailing odd group.
		for ; d+16 <= n; d += 16 {
			blk := tbl[off : off+2048]
			w := binary.LittleEndian.Uint64(codes[d:])
			s0 += blk[w&0xff]
			s1 += blk[256+(w>>8)&0xff]
			s2 += blk[512+(w>>16)&0xff]
			s3 += blk[768+(w>>24)&0xff]
			s0 += blk[1024+(w>>32)&0xff]
			s1 += blk[1280+(w>>40)&0xff]
			s2 += blk[1536+(w>>48)&0xff]
			s3 += blk[1792+(w>>56)]
			off += 2048
			blk = tbl[off : off+2048]
			w = binary.LittleEndian.Uint64(codes[d+8:])
			s0 += blk[w&0xff]
			s1 += blk[256+(w>>8)&0xff]
			s2 += blk[512+(w>>16)&0xff]
			s3 += blk[768+(w>>24)&0xff]
			s0 += blk[1024+(w>>32)&0xff]
			s1 += blk[1280+(w>>40)&0xff]
			s2 += blk[1536+(w>>48)&0xff]
			s3 += blk[1792+(w>>56)]
			off += 2048
			if s0+s1+s2+s3 > stop {
				return 0, true
			}
		}
		for ; d+8 <= n; d += 8 {
			blk := tbl[off : off+2048]
			w := binary.LittleEndian.Uint64(codes[d:])
			s0 += blk[w&0xff]
			s1 += blk[256+(w>>8)&0xff]
			s2 += blk[512+(w>>16)&0xff]
			s3 += blk[768+(w>>24)&0xff]
			s0 += blk[1024+(w>>32)&0xff]
			s1 += blk[1280+(w>>40)&0xff]
			s2 += blk[1536+(w>>48)&0xff]
			s3 += blk[1792+(w>>56)]
			off += 2048
			if s0+s1+s2+s3 > stop {
				return 0, true
			}
		}
	} else {
		for ; d+8 <= n; d += 8 {
			s0 += tbl[off+int(codes[d])]
			s1 += tbl[off+cells+int(codes[d+1])]
			s2 += tbl[off+2*cells+int(codes[d+2])]
			s3 += tbl[off+3*cells+int(codes[d+3])]
			s0 += tbl[off+4*cells+int(codes[d+4])]
			s1 += tbl[off+5*cells+int(codes[d+5])]
			s2 += tbl[off+6*cells+int(codes[d+6])]
			s3 += tbl[off+7*cells+int(codes[d+7])]
			off += 8 * cells
			if s0+s1+s2+s3 > stop {
				return 0, true
			}
		}
	}
	for ; d < n; d++ {
		s0 += tbl[off+int(codes[d])]
		off += cells
	}
	s := s0 + s1 + s2 + s3
	return s, s > stop
}

// RowUpper is RowLower's upper-bound counterpart. Like RowLowerBounded
// it sums over four accumulators for speed and restores validity by
// padding the result with the reordering slack — a marginally looser
// upper bound is still an upper bound.
func (t *Tables) RowUpper(codes []uint8) float64 {
	s, _ := t.sumRow(t.ub, codes, math.Inf(1))
	return s + s*t.mrel
}
