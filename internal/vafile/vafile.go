// Package vafile implements a vector-approximation file (Weber, Schek &
// Blott, VLDB 1998 [35]) over an embedded database, adapted to the
// query-sensitive weighted L1 distance of Eq. 11.
//
// Sec. 8 of the paper notes that when the filter step itself becomes a
// bottleneck ("in cases when the filter step takes up a significant part of
// retrieval time, one can apply indexing techniques to speed up
// filtering... in the filter step we are finding nearest neighbors in a
// real vector space"), standard vector indexing applies. The VA-file is the
// natural choice here because, unlike tree structures, it degrades
// gracefully in high dimensions and supports per-query weights: each
// dimension is scalar-quantized into cells, and for any query vector and
// any non-negative weight vector the cell bounds yield true lower and upper
// bounds of the weighted L1 distance. A top-p scan first computes bounds for
// every object (cheap, byte arithmetic), then evaluates real vectors only
// for objects whose lower bound passes the p-th smallest upper bound.
//
// The scan is exact: TopP returns precisely the linear scan's result.
package vafile

import (
	"fmt"
	"math"
	"sort"

	"qse/internal/space"
)

// Index is a VA-file over a fixed set of vectors.
type Index struct {
	bits   int
	cells  int
	dims   int
	bounds [][]float64 // bounds[d] has cells+1 ascending boundaries
	approx []uint8     // row-major: approx[i*dims+d] is the cell of vecs[i][d]
	vecs   [][]float64
}

// Build quantizes vecs into 2^bits cells per dimension using equi-populated
// (quantile) cell boundaries, the standard VA-file construction. bits must
// be in [1, 8]; all vectors must share the same nonzero dimensionality.
func Build(vecs [][]float64, bits int) (*Index, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("vafile: no vectors")
	}
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("vafile: bits = %d, want 1..8", bits)
	}
	dims := len(vecs[0])
	if dims == 0 {
		return nil, fmt.Errorf("vafile: zero-dimensional vectors")
	}
	for i, v := range vecs {
		if len(v) != dims {
			return nil, fmt.Errorf("vafile: vector %d has %d dims, want %d", i, len(v), dims)
		}
	}
	cells := 1 << bits
	ix := &Index{
		bits:   bits,
		cells:  cells,
		dims:   dims,
		bounds: make([][]float64, dims),
		approx: make([]uint8, len(vecs)*dims),
		vecs:   vecs,
	}

	column := make([]float64, len(vecs))
	for d := 0; d < dims; d++ {
		for i, v := range vecs {
			column[i] = v[d]
		}
		sort.Float64s(column)
		b := make([]float64, cells+1)
		for c := 0; c <= cells; c++ {
			pos := c * (len(column) - 1) / cells
			if c == cells {
				pos = len(column) - 1
			}
			b[c] = column[pos]
		}
		// Enforce non-decreasing boundaries (duplicates collapse cells).
		for c := 1; c <= cells; c++ {
			if b[c] < b[c-1] {
				b[c] = b[c-1]
			}
		}
		ix.bounds[d] = b
	}

	for i, v := range vecs {
		for d := 0; d < dims; d++ {
			ix.approx[i*dims+d] = ix.cellOf(d, v[d])
		}
	}
	return ix, nil
}

// cellOf locates the cell of value v in dimension d: the largest c with
// bounds[c] <= v, clamped into [0, cells-1].
func (ix *Index) cellOf(d int, v float64) uint8 {
	b := ix.bounds[d]
	c := sort.SearchFloat64s(b, v)
	// SearchFloat64s returns the first index with b[i] >= v.
	if c < len(b) && b[c] == v {
		// Exact boundary: belongs to the cell starting there.
	} else {
		c--
	}
	if c < 0 {
		c = 0
	}
	if c > ix.cells-1 {
		c = ix.cells - 1
	}
	return uint8(c)
}

// Size returns the number of indexed vectors.
func (ix *Index) Size() int { return len(ix.vecs) }

// Dims returns the vector dimensionality.
func (ix *Index) Dims() int { return ix.dims }

// ApproximationBytes returns the memory footprint of the approximations.
func (ix *Index) ApproximationBytes() int { return len(ix.approx) }

// Stats reports the work of one TopP scan.
type Stats struct {
	// FullEvaluations is how many real vectors were compared after the
	// bound phase; the linear-scan baseline is Size().
	FullEvaluations int
}

// TopP returns the p nearest indexed vectors to qvec under the weighted L1
// distance (weights nil means unweighted), in ascending order with ties
// broken by index — exactly the linear scan's answer, typically after far
// fewer full vector evaluations.
func (ix *Index) TopP(qvec, weights []float64, p int) ([]space.Neighbor, Stats, error) {
	if len(qvec) != ix.dims {
		return nil, Stats{}, fmt.Errorf("vafile: query has %d dims, index has %d", len(qvec), ix.dims)
	}
	if weights != nil && len(weights) != ix.dims {
		return nil, Stats{}, fmt.Errorf("vafile: weights have %d dims, index has %d", len(weights), ix.dims)
	}
	if weights != nil {
		for d, w := range weights {
			if w < 0 || math.IsNaN(w) {
				return nil, Stats{}, fmt.Errorf("vafile: invalid weight %v at dim %d", w, d)
			}
		}
	}
	if p <= 0 {
		return nil, Stats{}, nil
	}
	if p > len(ix.vecs) {
		p = len(ix.vecs)
	}

	// Per-dimension per-cell bound contributions for this query.
	lbTable := make([]float64, ix.dims*ix.cells)
	ubTable := make([]float64, ix.dims*ix.cells)
	for d := 0; d < ix.dims; d++ {
		w := 1.0
		if weights != nil {
			w = weights[d]
		}
		q := qvec[d]
		b := ix.bounds[d]
		for c := 0; c < ix.cells; c++ {
			lo, hi := b[c], b[c+1]
			var lb float64
			switch {
			case q < lo:
				lb = lo - q
			case q > hi:
				lb = q - hi
			}
			ub := math.Max(math.Abs(q-lo), math.Abs(q-hi))
			lbTable[d*ix.cells+c] = w * lb
			ubTable[d*ix.cells+c] = w * ub
		}
	}

	// Phase 1: bounds for every object; track the p-th smallest upper
	// bound with a max-heap implemented as a sorted insertion into a
	// fixed-size slice (p is small relative to n).
	lbs := make([]float64, len(ix.vecs))
	tau := math.Inf(1)
	worst := make([]float64, 0, p)
	for i := range ix.vecs {
		row := ix.approx[i*ix.dims : (i+1)*ix.dims]
		var lb, ub float64
		for d, c := range row {
			lb += lbTable[d*ix.cells+int(c)]
			ub += ubTable[d*ix.cells+int(c)]
		}
		lbs[i] = lb
		if len(worst) < p {
			worst = insertSorted(worst, ub)
			if len(worst) == p {
				tau = worst[p-1]
			}
		} else if ub < tau {
			worst = insertSorted(worst[:p-1], ub)
			tau = worst[p-1]
		}
	}

	// Phase 2: evaluate real vectors for survivors.
	var st Stats
	cands := make([]space.Neighbor, 0, 4*p)
	for i, lb := range lbs {
		if lb > tau {
			continue
		}
		st.FullEvaluations++
		cands = append(cands, space.Neighbor{Index: i, Distance: weightedL1(weights, qvec, ix.vecs[i])})
	}
	space.SortNeighbors(cands)
	if p > len(cands) {
		p = len(cands)
	}
	return cands[:p], st, nil
}

func insertSorted(xs []float64, v float64) []float64 {
	i := sort.SearchFloat64s(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func weightedL1(w, a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if w == nil {
			sum += d
		} else {
			sum += w[i] * d
		}
	}
	return sum
}
