package vafile

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"qse/internal/space"
)

func randVecs(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// linearTopP is the reference implementation: full scan + sort.
func linearTopP(vecs [][]float64, qvec, weights []float64, p int) []space.Neighbor {
	all := make([]space.Neighbor, len(vecs))
	for i, v := range vecs {
		all[i] = space.Neighbor{Index: i, Distance: weightedL1(weights, qvec, v)}
	}
	space.SortNeighbors(all)
	if p > len(all) {
		p = len(all)
	}
	return all[:p]
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Error("no vectors should error")
	}
	if _, err := Build([][]float64{{}}, 4); err == nil {
		t.Error("zero dims should error")
	}
	if _, err := Build([][]float64{{1}, {1, 2}}, 4); err == nil {
		t.Error("ragged should error")
	}
	if _, err := Build([][]float64{{1}}, 0); err == nil {
		t.Error("bits=0 should error")
	}
	if _, err := Build([][]float64{{1}}, 9); err == nil {
		t.Error("bits=9 should error")
	}
}

func TestTopPMatchesLinearScanUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := randVecs(rng, 300, 8)
	ix, err := Build(vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := randVecs(rng, 1, 8)[0]
		for _, p := range []int{1, 5, 20} {
			got, _, err := ix.TopP(q, nil, p)
			if err != nil {
				t.Fatal(err)
			}
			want := linearTopP(vecs, q, nil, p)
			if len(got) != len(want) {
				t.Fatalf("p=%d: %d results, want %d", p, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index {
					t.Fatalf("trial %d p=%d rank %d: got %d want %d", trial, p, i, got[i].Index, want[i].Index)
				}
			}
		}
	}
}

func TestTopPMatchesLinearScanWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := randVecs(rng, 250, 6)
	ix, err := Build(vecs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := randVecs(rng, 1, 6)[0]
		w := make([]float64, 6)
		for d := range w {
			w[d] = rng.Float64() * 3
		}
		// Sparse weights (common for query-sensitive models): zero some.
		w[trial%6] = 0
		got, _, err := ix.TopP(q, w, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := linearTopP(vecs, q, w, 10)
		for i := range want {
			if got[i].Index != want[i].Index {
				t.Fatalf("trial %d rank %d: got %d want %d", trial, i, got[i].Index, want[i].Index)
			}
		}
	}
}

func TestTopPPruning(t *testing.T) {
	// On clustered data the bound phase must prune a large share of full
	// evaluations — the reason the VA-file exists.
	rng := rand.New(rand.NewSource(3))
	centers := randVecs(rng, 10, 8)
	vecs := make([][]float64, 1000)
	for i := range vecs {
		c := centers[i%10]
		vecs[i] = make([]float64, 8)
		for d := range vecs[i] {
			vecs[i][d] = c[d] + rng.NormFloat64()*0.05
		}
	}
	ix, err := Build(vecs, 6)
	if err != nil {
		t.Fatal(err)
	}
	q := centers[3]
	_, st, err := ix.TopP(q, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullEvaluations >= len(vecs)/2 {
		t.Errorf("VA-file evaluated %d of %d vectors — bounds are not pruning", st.FullEvaluations, len(vecs))
	}
}

func TestTopPEdgeCases(t *testing.T) {
	vecs := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	ix, err := Build(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := ix.TopP([]float64{0, 0}, nil, 0); err != nil || got != nil {
		t.Errorf("p=0: %v %v", got, err)
	}
	got, _, err := ix.TopP([]float64{0, 0}, nil, 100)
	if err != nil || len(got) != 3 {
		t.Errorf("p>n: %v, %d results", err, len(got))
	}
	if _, _, err := ix.TopP([]float64{0}, nil, 1); err == nil {
		t.Error("wrong query dims should error")
	}
	if _, _, err := ix.TopP([]float64{0, 0}, []float64{1}, 1); err == nil {
		t.Error("wrong weight dims should error")
	}
	if _, _, err := ix.TopP([]float64{0, 0}, []float64{-1, 1}, 1); err == nil {
		t.Error("negative weight should error")
	}
}

func TestConstantDimension(t *testing.T) {
	// A constant dimension collapses all cells; bounds must stay valid.
	vecs := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	ix, err := Build(vecs, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.TopP([]float64{2.4, 7}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := linearTopP(vecs, []float64{2.4, 7}, nil, 2)
	for i := range want {
		if got[i].Index != want[i].Index {
			t.Fatalf("rank %d: got %d want %d", i, got[i].Index, want[i].Index)
		}
	}
}

func TestQueryOutsideDataRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs := randVecs(rng, 100, 4)
	ix, err := Build(vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{100, -100, 50, -50} // far outside every boundary
	got, _, err := ix.TopP(q, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := linearTopP(vecs, q, nil, 5)
	for i := range want {
		if got[i].Index != want[i].Index {
			t.Fatalf("rank %d: got %d want %d", i, got[i].Index, want[i].Index)
		}
	}
}

func TestTopPPropertyExactness(t *testing.T) {
	// Property: for random data, weights, and p, the VA-file scan equals
	// the linear scan exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		d := 1 + rng.Intn(6)
		bits := 1 + rng.Intn(6)
		vecs := randVecs(rng, n, d)
		ix, err := Build(vecs, bits)
		if err != nil {
			return false
		}
		q := randVecs(rng, 1, d)[0]
		var w []float64
		if rng.Intn(2) == 0 {
			w = make([]float64, d)
			for j := range w {
				w[j] = rng.Float64() * 2
			}
		}
		p := 1 + rng.Intn(n)
		got, _, err := ix.TopP(q, w, p)
		if err != nil {
			return false
		}
		want := linearTopP(vecs, q, w, p)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Index != want[i].Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCellOfBoundaries(t *testing.T) {
	vecs := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
	ix, err := Build(vecs, 2) // 4 cells
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]uint8, len(vecs))
	for i, v := range vecs {
		cells[i] = ix.cellOf(0, v[0])
	}
	if !sort.SliceIsSorted(cells, func(i, j int) bool { return cells[i] < cells[j] }) {
		t.Errorf("cells not monotone: %v", cells)
	}
	if cells[0] != 0 || cells[len(cells)-1] != 3 {
		t.Errorf("extremes: %v", cells)
	}
}

func TestAccessors(t *testing.T) {
	vecs := [][]float64{{1, 2, 3}, {4, 5, 6}}
	ix, err := Build(vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 2 || ix.Dims() != 3 {
		t.Errorf("Size/Dims = %d/%d", ix.Size(), ix.Dims())
	}
	if ix.ApproximationBytes() != 6 {
		t.Errorf("ApproximationBytes = %d", ix.ApproximationBytes())
	}
}
