package vafile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// trueWeightedL1 is the reference distance the bounds must bracket.
func trueWeightedL1(weights, q, v []float64) float64 {
	s := 0.0
	for d := range q {
		w := 1.0
		if weights != nil {
			w = weights[d]
		}
		s += w * math.Abs(q[d]-v[d])
	}
	return s
}

func randBlock(rng *rand.Rand, rows, dims int) []float64 {
	block := make([]float64, rows*dims)
	for i := range block {
		block[i] = rng.NormFloat64()
	}
	return block
}

// checkBounds builds boundaries over block, encodes every row, and
// asserts lower <= true weighted L1 <= upper for every row under the
// given query and weights. It is the core invariant the two-phase scan
// rests on.
func checkBounds(t *testing.T, block []float64, rows, dims, bits int, q, w []float64) {
	t.Helper()
	b, err := BuildBoundaries(block, rows, dims, bits)
	if err != nil {
		t.Fatal(err)
	}
	codes := b.EncodeBlock(block, rows)
	tbl, ok := b.QueryTables(q, w)
	if !ok {
		t.Fatalf("QueryTables rejected a finite query (dims=%d bits=%d)", dims, bits)
	}
	for r := 0; r < rows; r++ {
		row := block[r*dims : (r+1)*dims]
		rc := codes[r*dims : (r+1)*dims]
		dist := trueWeightedL1(w, q, row)
		lb, ub := tbl.RowLower(rc), tbl.RowUpper(rc)
		if lb > dist || dist > ub {
			t.Fatalf("row %d (dims=%d bits=%d): bounds [%g, %g] do not bracket %g", r, dims, bits, lb, ub, dist)
		}
	}
}

func TestBoundsBracketDistanceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for bits := MinBits; bits <= MaxBits; bits++ {
		rows := 5 + rng.Intn(200)
		dims := 1 + rng.Intn(12)
		block := randBlock(rng, rows, dims)
		q := randBlock(rng, 1, dims)
		w := make([]float64, dims)
		for d := range w {
			w[d] = rng.Float64() * 3
		}
		w[rng.Intn(dims)] = 0 // sparse weights are the common case
		checkBounds(t, block, rows, dims, bits, q, w)
		checkBounds(t, block, rows, dims, bits, q, nil)
	}
}

func TestBoundsDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := []float64{0.3, -2, 7}
	w := []float64{0, 1.5, 2}

	t.Run("constantDimensions", func(t *testing.T) {
		// Every cell collapses to a point in dims 0 and 2.
		block := make([]float64, 30*3)
		for r := 0; r < 30; r++ {
			block[r*3] = 5
			block[r*3+1] = rng.NormFloat64()
			block[r*3+2] = -1
		}
		for _, bits := range []int{1, 3, 8} {
			checkBounds(t, block, 30, 3, bits, q, w)
		}
	})
	t.Run("duplicateRows", func(t *testing.T) {
		row := []float64{1, 2, 3}
		block := make([]float64, 0, 20*3)
		for r := 0; r < 20; r++ {
			block = append(block, row...)
		}
		for _, bits := range []int{1, 4, 8} {
			checkBounds(t, block, 20, 3, bits, q, w)
		}
	})
	t.Run("zeroWeights", func(t *testing.T) {
		block := randBlock(rng, 50, 3)
		checkBounds(t, block, 50, 3, 4, q, []float64{0, 0, 0})
	})
	t.Run("singleRow", func(t *testing.T) {
		checkBounds(t, []float64{1, 2, 3}, 1, 3, 4, q, w)
	})
	t.Run("queryOutsideDataRange", func(t *testing.T) {
		block := randBlock(rng, 60, 3)
		checkBounds(t, block, 60, 3, 5, []float64{100, -100, 50}, w)
	})
}

func TestBoundsProperty(t *testing.T) {
	// quick.Check over seeds: random shape, random bit width, random
	// query/weights — the bracket must hold for every row.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(120)
		dims := 1 + rng.Intn(8)
		bits := MinBits + rng.Intn(MaxBits-MinBits+1)
		block := randBlock(rng, rows, dims)
		if rng.Intn(4) == 0 { // inject duplicates
			copy(block[:dims], block[(rows-1)*dims:])
		}
		b, err := BuildBoundaries(block, rows, dims, bits)
		if err != nil {
			return false
		}
		q := randBlock(rng, 1, dims)
		var w []float64
		if rng.Intn(2) == 0 {
			w = make([]float64, dims)
			for d := range w {
				w[d] = rng.Float64() * 2
			}
		}
		tbl, ok := b.QueryTables(q, w)
		if !ok {
			return false
		}
		codes := b.EncodeBlock(block, rows)
		for r := 0; r < rows; r++ {
			dist := trueWeightedL1(w, q, block[r*dims:(r+1)*dims])
			rc := codes[r*dims : (r+1)*dims]
			if tbl.RowLower(rc) > dist || dist > tbl.RowUpper(rc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBuildBoundariesValidation(t *testing.T) {
	good := []float64{1, 2, 3, 4}
	for _, c := range []struct {
		name             string
		block            []float64
		rows, dims, bits int
	}{
		{"bitsLow", good, 2, 2, 0},
		{"bitsHigh", good, 2, 2, 9},
		{"zeroRows", nil, 0, 2, 4},
		{"zeroDims", nil, 2, 0, 4},
		{"lengthMismatch", good, 3, 2, 4},
		{"nan", []float64{1, math.NaN(), 3, 4}, 2, 2, 4},
		{"inf", []float64{1, math.Inf(1), 3, 4}, 2, 2, 4},
	} {
		if _, err := BuildBoundaries(c.block, c.rows, c.dims, c.bits); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestFromFlatRoundTripAndValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	block := randBlock(rng, 40, 3)
	b, err := BuildBoundaries(block, 40, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromFlat(b.Flat(), b.Dims(), b.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims() != 3 || got.Bits() != 4 || got.Cells() != 16 {
		t.Fatalf("round trip: dims=%d bits=%d cells=%d", got.Dims(), got.Bits(), got.Cells())
	}
	// Round-tripped boundaries must encode identically.
	rowCodes := make([]uint8, 3)
	wantCodes := make([]uint8, 3)
	for r := 0; r < 40; r++ {
		row := block[r*3 : (r+1)*3]
		b.Encode(row, wantCodes)
		got.Encode(row, rowCodes)
		for d := range rowCodes {
			if rowCodes[d] != wantCodes[d] {
				t.Fatalf("row %d dim %d: code %d != %d after round trip", r, d, rowCodes[d], wantCodes[d])
			}
		}
	}

	if _, err := FromFlat(b.Flat()[:5], 3, 4); err == nil {
		t.Error("short grid: no error")
	}
	if _, err := FromFlat(b.Flat(), 3, 0); err == nil {
		t.Error("bits=0: no error")
	}
	bad := append([]float64(nil), b.Flat()...)
	bad[1] = math.NaN()
	if _, err := FromFlat(bad, 3, 4); err == nil {
		t.Error("NaN grid: no error")
	}
	bad2 := append([]float64(nil), b.Flat()...)
	bad2[2], bad2[3] = bad2[3]+1, bad2[2] // break monotonicity
	if _, err := FromFlat(bad2, 3, 4); err == nil {
		t.Error("decreasing grid: no error")
	}
}

func TestEncodeReportsOutOfRange(t *testing.T) {
	block := []float64{0, 0, 1, 1, 2, 2, 3, 3}
	b, err := BuildBoundaries(block, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint8, 2)
	if !b.Encode([]float64{1.5, 2.5}, dst) {
		t.Error("in-range row reported out of range")
	}
	if b.Encode([]float64{-1, 1}, dst) {
		t.Error("below-range row reported in range")
	}
	if b.Encode([]float64{1, 9}, dst) {
		t.Error("above-range row reported in range")
	}
	if b.Encode([]float64{math.NaN(), 1}, dst) {
		t.Error("NaN row reported in range")
	}
}

func TestQueryTablesRejectsInvalid(t *testing.T) {
	block := []float64{0, 1, 2, 3}
	b, err := BuildBoundaries(block, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		q, w []float64
	}{
		{"wrongQueryDims", []float64{1}, nil},
		{"wrongWeightDims", []float64{1, 2}, []float64{1}},
		{"nanQuery", []float64{math.NaN(), 0}, nil},
		{"infQuery", []float64{math.Inf(-1), 0}, nil},
		{"negativeWeight", []float64{1, 2}, []float64{-1, 1}},
		{"nanWeight", []float64{1, 2}, []float64{math.NaN(), 1}},
	} {
		if _, ok := b.QueryTables(c.q, c.w); ok {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if tbl, ok := b.QueryTables([]float64{1, 2}, nil); !ok || tbl.Dims() != 2 {
		t.Errorf("valid query rejected (ok=%v dims=%d)", ok, tbl.Dims())
	}
}

func TestCellOfMonotone(t *testing.T) {
	block := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	b, err := BuildBoundaries(block, 8, 1, 2) // 4 cells
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, v := range block {
		c := b.cellOf(0, v)
		if c < prev {
			t.Fatalf("cellOf(%g) = %d < previous %d", v, c, prev)
		}
		prev = c
	}
	if b.cellOf(0, 0) != 0 || b.cellOf(0, 7) != 3 {
		t.Errorf("extremes: %d, %d", b.cellOf(0, 0), b.cellOf(0, 7))
	}
}
