package vafile

import (
	"math"
	"testing"
)

// FuzzBounds fuzzes the bracket property the two-phase scan rests on:
// for any block, query, and weight vector decoded from raw bytes,
// RowLower <= true weighted L1 <= RowUpper for every in-range row.
// Bytes map to values via (b-128)/16 so the fuzzer explores negative
// values, duplicates, and constant dimensions without a structured
// generator.
func FuzzBounds(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(2), uint8(3))
	f.Add([]byte{128, 128, 128, 128, 128, 128}, uint8(1), uint8(1))
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 200, 13}, uint8(3), uint8(8))
	f.Fuzz(func(t *testing.T, raw []byte, dRaw, bitsRaw uint8) {
		dims := 1 + int(dRaw%4)
		bits := MinBits + int(bitsRaw)%(MaxBits-MinBits+1)
		// The first two rows' worth of bytes become query + weights; the
		// rest is the block.
		if len(raw) < 3*dims {
			t.Skip()
		}
		val := func(b byte) float64 { return (float64(b) - 128) / 16 }
		q := make([]float64, dims)
		w := make([]float64, dims)
		for d := 0; d < dims; d++ {
			q[d] = val(raw[d])
			w[d] = math.Abs(val(raw[dims+d])) // weights must be non-negative
		}
		body := raw[2*dims:]
		rows := len(body) / dims
		if rows == 0 || rows > 256 {
			t.Skip()
		}
		block := make([]float64, rows*dims)
		for i := range block {
			block[i] = val(body[i])
		}

		b, err := BuildBoundaries(block, rows, dims, bits)
		if err != nil {
			t.Fatalf("finite block rejected: %v", err)
		}
		rt, err := FromFlat(b.Flat(), dims, bits)
		if err != nil {
			t.Fatalf("own grid rejected by FromFlat: %v", err)
		}
		tbl, ok := b.QueryTables(q, w)
		if !ok {
			t.Fatalf("finite query/weights rejected")
		}
		codes := make([]uint8, dims)
		rtCodes := make([]uint8, dims)
		for r := 0; r < rows; r++ {
			row := block[r*dims : (r+1)*dims]
			if !b.Encode(row, codes) {
				t.Fatalf("row %d from the build block reported out of range", r)
			}
			if !rt.Encode(row, rtCodes) {
				t.Fatalf("row %d out of range after grid round trip", r)
			}
			for d := range codes {
				if codes[d] != rtCodes[d] {
					t.Fatalf("row %d dim %d: code %d != %d after round trip", r, d, codes[d], rtCodes[d])
				}
			}
			dist := trueWeightedL1(w, q, row)
			lb, ub := tbl.RowLower(codes), tbl.RowUpper(codes)
			if lb > dist || dist > ub {
				t.Fatalf("row %d: bounds [%g, %g] do not bracket %g (dims=%d bits=%d)", r, lb, ub, dist, dims, bits)
			}
			if lb < 0 || ub < lb {
				t.Fatalf("row %d: malformed bounds [%g, %g]", r, lb, ub)
			}
			// At the byte-tiling widths the packed encoding must agree
			// with the unpacked one field for field.
			if PackedWidth(bits) {
				stride := PackedStride(dims, bits)
				packed := make([]uint8, stride)
				if !b.EncodePacked(row, packed) {
					t.Fatalf("row %d: EncodePacked reported out of range, Encode did not", r)
				}
				viaPack := make([]uint8, stride)
				PackRow(codes, bits, viaPack)
				for i := range packed {
					if packed[i] != viaPack[i] {
						t.Fatalf("row %d byte %d: EncodePacked %08b != PackRow(Encode) %08b", r, i, packed[i], viaPack[i])
					}
				}
				unpacked := make([]uint8, dims)
				UnpackRow(packed, dims, bits, unpacked)
				for d := range codes {
					if unpacked[d] != codes[d] {
						t.Fatalf("row %d dim %d: unpacked code %d != %d", r, d, unpacked[d], codes[d])
					}
				}
			}
		}
	})
}

// FuzzPackedRoundTrip fuzzes the packed code layout in isolation: for
// any code row at any packed width, pack-then-unpack is the identity on
// masked codes, packing is canonical (pad bits zero, stable under a
// second round trip), and raw packed bytes with clean pad bits survive
// unpack-then-pack byte-identically — the property the bundle reader's
// pad validation rests on.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0xff, 0x00}, uint8(5), uint8(2))
	f.Add([]byte{1, 2, 3}, uint8(2), uint8(0))
	f.Add([]byte{0xaa, 0x55}, uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, dRaw, widthRaw uint8) {
		widths := [4]int{1, 2, 4, 8}
		bits := widths[widthRaw%4]
		dims := 1 + int(dRaw%17)
		if len(raw) < dims {
			t.Skip()
		}
		mask := uint8(1<<bits - 1)
		codes := make([]uint8, dims)
		for d := range codes {
			codes[d] = raw[d] & mask
		}
		stride := PackedStride(dims, bits)
		packed := make([]uint8, stride)
		PackRow(codes, bits, packed)
		if pad := stride*8 - dims*bits; pad > 0 {
			if packed[stride-1]&(uint8(0xff)<<(8-pad)) != 0 {
				t.Fatalf("dims=%d bits=%d: nonzero pad bits in %08b", dims, bits, packed[stride-1])
			}
		}
		back := make([]uint8, dims)
		UnpackRow(packed, dims, bits, back)
		for d := range codes {
			if back[d] != codes[d] {
				t.Fatalf("dims=%d bits=%d dim=%d: %d != %d after round trip", dims, bits, d, back[d], codes[d])
			}
		}
		again := make([]uint8, stride)
		PackRow(back, bits, again)
		for i := range packed {
			if again[i] != packed[i] {
				t.Fatalf("dims=%d bits=%d byte=%d: packing not canonical: %08b != %08b", dims, bits, i, again[i], packed[i])
			}
		}
		// Unmasked codes must pack identically to their masked form — a
		// corrupt caller cannot spill into a neighboring field.
		dirty := make([]uint8, dims)
		for d := range dirty {
			dirty[d] = raw[d]
		}
		viaDirty := make([]uint8, stride)
		PackRow(dirty, bits, viaDirty)
		for i := range packed {
			if viaDirty[i] != packed[i] {
				t.Fatalf("dims=%d bits=%d byte=%d: unmasked codes leaked: %08b != %08b", dims, bits, i, viaDirty[i], packed[i])
			}
		}
	})
}
