package vafile

import (
	"math"
	"testing"
)

// FuzzBounds fuzzes the bracket property the two-phase scan rests on:
// for any block, query, and weight vector decoded from raw bytes,
// RowLower <= true weighted L1 <= RowUpper for every in-range row.
// Bytes map to values via (b-128)/16 so the fuzzer explores negative
// values, duplicates, and constant dimensions without a structured
// generator.
func FuzzBounds(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(2), uint8(3))
	f.Add([]byte{128, 128, 128, 128, 128, 128}, uint8(1), uint8(1))
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 200, 13}, uint8(3), uint8(8))
	f.Fuzz(func(t *testing.T, raw []byte, dRaw, bitsRaw uint8) {
		dims := 1 + int(dRaw%4)
		bits := MinBits + int(bitsRaw)%(MaxBits-MinBits+1)
		// The first two rows' worth of bytes become query + weights; the
		// rest is the block.
		if len(raw) < 3*dims {
			t.Skip()
		}
		val := func(b byte) float64 { return (float64(b) - 128) / 16 }
		q := make([]float64, dims)
		w := make([]float64, dims)
		for d := 0; d < dims; d++ {
			q[d] = val(raw[d])
			w[d] = math.Abs(val(raw[dims+d])) // weights must be non-negative
		}
		body := raw[2*dims:]
		rows := len(body) / dims
		if rows == 0 || rows > 256 {
			t.Skip()
		}
		block := make([]float64, rows*dims)
		for i := range block {
			block[i] = val(body[i])
		}

		b, err := BuildBoundaries(block, rows, dims, bits)
		if err != nil {
			t.Fatalf("finite block rejected: %v", err)
		}
		rt, err := FromFlat(b.Flat(), dims, bits)
		if err != nil {
			t.Fatalf("own grid rejected by FromFlat: %v", err)
		}
		tbl, ok := b.QueryTables(q, w)
		if !ok {
			t.Fatalf("finite query/weights rejected")
		}
		codes := make([]uint8, dims)
		rtCodes := make([]uint8, dims)
		for r := 0; r < rows; r++ {
			row := block[r*dims : (r+1)*dims]
			if !b.Encode(row, codes) {
				t.Fatalf("row %d from the build block reported out of range", r)
			}
			if !rt.Encode(row, rtCodes) {
				t.Fatalf("row %d out of range after grid round trip", r)
			}
			for d := range codes {
				if codes[d] != rtCodes[d] {
					t.Fatalf("row %d dim %d: code %d != %d after round trip", r, d, codes[d], rtCodes[d])
				}
			}
			dist := trueWeightedL1(w, q, row)
			lb, ub := tbl.RowLower(codes), tbl.RowUpper(codes)
			if lb > dist || dist > ub {
				t.Fatalf("row %d: bounds [%g, %g] do not bracket %g (dims=%d bits=%d)", r, lb, ub, dist, dims, bits)
			}
			if lb < 0 || ub < lb {
				t.Fatalf("row %d: malformed bounds [%g, %g]", r, lb, ub)
			}
		}
	})
}
