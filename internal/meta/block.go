// Block is the columnar metadata layout of a base segment: one typed
// array per field plus a presence bitset, built when a segment is
// compacted (or a bundle reopens) and immutable afterwards — the same
// lifecycle as the base vector block it sits beside. Delta rows stay
// row-oriented Maps; only the compacted base pays for columns, which is
// where the rows (and the wins of columnar evaluation and the per-field
// value index) are.
package meta

import (
	"math/bits"
	"strconv"
	"sync"
)

// Column is one field's values across a block's rows: a presence bitset
// and a dense array of the field's kind. Absent rows hold the zero
// value and a clear presence bit.
type column struct {
	kind    Kind
	present []uint64
	ints    []int64
	flts    []float64
	strs    []string
	bools   []uint64 // value bitset for KindBool

	// idx maps an eq-comparable value key to the ascending rows holding
	// it — the bitmap plan's posting lists. Built lazily under once so a
	// store that never sees a selective equality filter never pays for
	// it; the block is immutable, so the build is safe to race-gate.
	once sync.Once
	idx  map[string][]int32
}

// Block holds the columns of one base segment. A nil *Block is the
// canonical "no metadata" block: every row reads as an empty Map.
type Block struct {
	rows int
	cols map[string]*column
}

// NewBlock builds a columnar block from per-row records (row i's
// metadata is rows[i]; nil entries are rows without metadata). It
// returns nil when no row carries any metadata, so the metadata-less
// store keeps its exact pre-metadata representation.
func NewBlock(rows []Map) *Block {
	var cols map[string]*column
	for i, m := range rows {
		for field, v := range m {
			if cols == nil {
				cols = make(map[string]*column)
			}
			c, ok := cols[field]
			if !ok {
				c = newColumn(v.Kind, len(rows))
				cols[field] = c
			}
			c.set(i, v)
		}
	}
	if cols == nil {
		return nil
	}
	return &Block{rows: len(rows), cols: cols}
}

func newColumn(kind Kind, rows int) *column {
	c := &column{kind: kind, present: make([]uint64, (rows+63)/64)}
	switch kind {
	case KindInt:
		c.ints = make([]int64, rows)
	case KindFloat:
		c.flts = make([]float64, rows)
	case KindString:
		c.strs = make([]string, rows)
	case KindBool:
		c.bools = make([]uint64, (rows+63)/64)
	}
	return c
}

func (c *column) set(row int, v Value) {
	c.present[row>>6] |= 1 << (uint(row) & 63)
	switch c.kind {
	case KindInt:
		c.ints[row] = v.Int
	case KindFloat:
		c.flts[row] = v.Flt
	case KindString:
		c.strs[row] = v.Str
	case KindBool:
		if v.Bool {
			c.bools[row>>6] |= 1 << (uint(row) & 63)
		}
	}
}

func (c *column) has(row int) bool {
	return c.present[row>>6]>>(uint(row)&63)&1 != 0
}

func (c *column) value(row int) Value {
	switch c.kind {
	case KindInt:
		return IntValue(c.ints[row])
	case KindFloat:
		return FloatValue(c.flts[row])
	case KindString:
		return StringValue(c.strs[row])
	case KindBool:
		return BoolValue(c.bools[row>>6]>>(uint(row)&63)&1 != 0)
	}
	return Value{}
}

// Rows returns the block's row count (0 for a nil block).
func (b *Block) Rows() int {
	if b == nil {
		return 0
	}
	return b.rows
}

// Value returns the metadata value of one field at one row.
func (b *Block) Value(row int, field string) (Value, bool) {
	if b == nil {
		return Value{}, false
	}
	c, ok := b.cols[field]
	if !ok || !c.has(row) {
		return Value{}, false
	}
	return c.value(row), true
}

// Row materializes one row's record as a fresh Map (nil when the row
// has no metadata) — the gather/compact/persist path, not the scan path.
func (b *Block) Row(row int) Map {
	if b == nil {
		return nil
	}
	var m Map
	for field, c := range b.cols {
		if c.has(row) {
			if m == nil {
				m = make(Map)
			}
			m[field] = c.value(row)
		}
	}
	return m
}

// valueKey encodes an eq-comparable value for the posting index. Floats
// are not indexed (equality filters on floats are a smell the inline
// plan handles fine); columns are single-kind, so keys cannot collide
// across kinds.
func valueKey(v Value) (string, bool) {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10), true
	case KindString:
		return v.Str, true
	case KindBool:
		if v.Bool {
			return "t", true
		}
		return "f", true
	}
	return "", false
}

// postings returns the ascending rows holding value v in this column,
// building the value index on first use.
func (c *column) postings(v Value) ([]int32, bool) {
	if c.kind == KindFloat {
		return nil, false
	}
	key, ok := valueKey(v)
	if !ok {
		return nil, false
	}
	c.once.Do(func() {
		idx := make(map[string][]int32)
		for w, word := range c.present {
			for word != 0 {
				row := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if k, ok := valueKey(c.value(row)); ok {
					idx[k] = append(idx[k], int32(row))
				}
			}
		}
		c.idx = idx
	})
	return c.idx[key], true
}

// Plan is the base-segment evaluation strategy the planner picks per
// query per segment: sweep every row evaluating the conjunction
// (inline), or probe the value index of a selective equality leaf and
// verify only its postings (bitmap). Both produce the same match set;
// the choice is purely a cost call.
type Plan uint8

const (
	PlanInline Plan = iota
	PlanBitmap
)

func (p Plan) String() string {
	if p == PlanBitmap {
		return "bitmap"
	}
	return "inline"
}

// EvalBlock computes the rows of a base block matching p into dst, a
// zeroed bitset of (rows+63)/64 words. blk may be nil (a base with no
// metadata); rows is the base row count, which bounds the sweep when
// blk is nil. The plan actually used is returned — PlanBitmap falls
// back to inline when no leaf has a usable posting list.
func (p *Predicate) EvalBlock(blk *Block, rows int, dst []uint64, plan Plan) Plan {
	if rows == 0 {
		return PlanInline
	}
	if blk == nil {
		// Every row is metadata-less: the conjunction holds for all rows
		// or none.
		if p.Match(nil) {
			setAll(dst, rows)
		}
		return PlanInline
	}
	cols := make([]*column, len(p.leaves))
	for i := range p.leaves {
		cols[i] = blk.cols[p.leaves[i].field] // may be nil: field absent from this base
	}
	if plan == PlanBitmap {
		if p.evalBitmap(blk, cols, dst) {
			return PlanBitmap
		}
	}
	p.evalInline(rows, cols, dst)
	return PlanInline
}

// evalInline sweeps rows 0..rows, evaluating the full conjunction per
// row over the columns.
func (p *Predicate) evalInline(rows int, cols []*column, dst []uint64) {
rowLoop:
	for row := 0; row < rows; row++ {
		for i := range p.leaves {
			if !leafMatchCol(&p.leaves[i], cols[i], row) {
				continue rowLoop
			}
		}
		dst[row>>6] |= 1 << (uint(row) & 63)
	}
}

// evalBitmap probes the value index of the first eq leaf that has one,
// seeds dst from its postings, and verifies the remaining leaves only on
// those rows. Reports false when no leaf is indexable.
func (p *Predicate) evalBitmap(blk *Block, cols []*column, dst []uint64) bool {
	seed := -1
	var rows []int32
	for i := range p.leaves {
		l := &p.leaves[i]
		if l.op != opEq || cols[i] == nil {
			continue
		}
		if pr, ok := cols[i].postings(l.val); ok {
			seed, rows = i, pr
			break
		}
	}
	if seed < 0 {
		return false
	}
candLoop:
	for _, r := range rows {
		row := int(r)
		for i := range p.leaves {
			if i == seed {
				continue
			}
			if !leafMatchCol(&p.leaves[i], cols[i], row) {
				continue candLoop
			}
		}
		dst[row>>6] |= 1 << (uint(row) & 63)
	}
	return true
}

// leafMatchCol evaluates one leaf at one row of its column (nil column
// means the field is absent from every row of this base).
func leafMatchCol(l *leaf, c *column, row int) bool {
	if c == nil {
		return l.match(Value{}, false)
	}
	if !c.has(row) {
		return l.match(Value{}, false)
	}
	return l.match(c.value(row), true)
}

// setAll sets bits [0, n) of the bitset.
func setAll(dst []uint64, n int) {
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 {
		dst[len(dst)-1] = ^uint64(0) >> uint(64-rem)
	}
}
