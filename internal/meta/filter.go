// The predicate language: a JSON tree of comparisons compiled, against
// the field-type registry, into a flat conjunction of typed leaves.
//
// Grammar (every node is a JSON object):
//
//	{"and": [node, node, ...]}                  conjunction (nestable)
//	{"field": "tenant", "eq": "acme"}           eq | ne | lt | le | gt | ge
//	{"field": "shard",  "in": [1, 2, 3]}        membership
//	{"field": "ts",     "exists": true}         presence test
//
// A leaf names exactly one field and exactly one operator. Comparisons
// are typed at compile time: the operand must convert to the field's
// registered kind, ordered operators need an orderable kind (int, float,
// string), and a field the registry has never seen is rejected — the
// serving layer turns every compile error into a 400 with this package's
// message. Absent fields compare as no-match for every operator except
// exists:false, which is the soft-delete / not-yet-tagged idiom.
package meta

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Compile limits: a filter tree deeper or wider than any sane client
// would send is rejected instead of walked, so adversarial input cannot
// turn the compiler into a stack or CPU sink (see FuzzPredicate).
const (
	maxFilterDepth  = 32
	maxFilterLeaves = 256
)

type op uint8

const (
	opEq op = iota
	opNe
	opLt
	opLe
	opGt
	opGe
	opIn
	opExists
)

var opNames = map[string]op{
	"eq": opEq, "ne": opNe, "lt": opLt, "le": opLe,
	"gt": opGt, "ge": opGe, "in": opIn, "exists": opExists,
}

// leaf is one compiled comparison.
type leaf struct {
	field string
	kind  Kind
	op    op
	val   Value   // eq/ne/lt/le/gt/ge operand
	set   []Value // in operand
	want  bool    // exists operand
}

// Predicate is a compiled conjunction, ready to evaluate against rows.
// A nil *Predicate means "no filter" everywhere in the read path.
type Predicate struct {
	leaves []leaf
	fields []string // unique referenced fields, first-mention order
}

// CompileFilter parses and type-checks a JSON filter tree against the
// given field→kind table. A null or empty filter compiles to nil (no
// predicate). Every error is a client error phrased for an API response.
func CompileFilter(raw []byte, kinds map[string]Kind) (*Predicate, error) {
	if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
		return nil, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var node any
	if err := dec.Decode(&node); err != nil {
		return nil, fmt.Errorf("filter: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("filter: trailing data after filter")
	}
	p := &Predicate{}
	if err := p.compileNode(node, kinds, 0); err != nil {
		return nil, err
	}
	if len(p.leaves) == 0 {
		return nil, fmt.Errorf("filter: empty conjunction")
	}
	return p, nil
}

func (p *Predicate) compileNode(node any, kinds map[string]Kind, depth int) error {
	if depth > maxFilterDepth {
		return fmt.Errorf("filter: tree deeper than %d levels", maxFilterDepth)
	}
	obj, ok := node.(map[string]any)
	if !ok {
		return fmt.Errorf("filter: node must be a JSON object")
	}
	if sub, ok := obj["and"]; ok {
		if len(obj) != 1 {
			return fmt.Errorf(`filter: "and" node must have no other keys`)
		}
		arr, ok := sub.([]any)
		if !ok {
			return fmt.Errorf(`filter: "and" wants an array of nodes`)
		}
		for _, child := range arr {
			if err := p.compileNode(child, kinds, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return p.compileLeaf(obj, kinds)
}

func (p *Predicate) compileLeaf(obj map[string]any, kinds map[string]Kind) error {
	if len(p.leaves) >= maxFilterLeaves {
		return fmt.Errorf("filter: more than %d comparisons", maxFilterLeaves)
	}
	rawField, ok := obj["field"]
	if !ok {
		return fmt.Errorf(`filter: comparison node missing "field"`)
	}
	field, ok := rawField.(string)
	if !ok || field == "" {
		return fmt.Errorf(`filter: "field" must be a non-empty string`)
	}
	if len(obj) != 2 {
		return fmt.Errorf("filter: field %q must pair with exactly one operator (eq, ne, lt, le, gt, ge, in, exists)", field)
	}
	var (
		theOp   op
		operand any
		found   bool
	)
	for key, v := range obj {
		if key == "field" {
			continue
		}
		o, ok := opNames[key]
		if !ok {
			return fmt.Errorf("filter: unknown operator %q on field %q", key, field)
		}
		theOp, operand, found = o, v, true
	}
	if !found {
		return fmt.Errorf("filter: field %q has no operator", field)
	}
	kind, known := kinds[field]
	if !known {
		return fmt.Errorf("filter: unknown metadata field %q (fields are registered by the first object written with them)", field)
	}
	l := leaf{field: field, kind: kind, op: theOp}
	switch theOp {
	case opExists:
		b, ok := operand.(bool)
		if !ok {
			return fmt.Errorf("filter: exists on field %q wants true or false", field)
		}
		l.want = b
	case opIn:
		arr, ok := operand.([]any)
		if !ok {
			return fmt.Errorf("filter: in on field %q wants an array", field)
		}
		if len(arr) > maxFilterLeaves {
			return fmt.Errorf("filter: in on field %q lists more than %d values", field, maxFilterLeaves)
		}
		l.set = make([]Value, 0, len(arr))
		for _, e := range arr {
			v, err := operandValue(field, kind, e)
			if err != nil {
				return err
			}
			l.set = append(l.set, v)
		}
	case opLt, opLe, opGt, opGe:
		if kind == KindBool {
			return fmt.Errorf("filter: field %q holds bool values, which are not ordered", field)
		}
		v, err := operandValue(field, kind, operand)
		if err != nil {
			return err
		}
		l.val = v
	default: // eq, ne
		v, err := operandValue(field, kind, operand)
		if err != nil {
			return err
		}
		l.val = v
	}
	p.leaves = append(p.leaves, l)
	p.noteField(field)
	return nil
}

func (p *Predicate) noteField(field string) {
	for _, f := range p.fields {
		if f == field {
			return
		}
	}
	p.fields = append(p.fields, field)
}

// operandValue converts a decoded JSON operand to the field's kind. An
// integral number literal converts to either numeric kind; a fractional
// one only to float — {"field":"ts","ge":17.5} on an int field is a
// client mistake worth naming, not truncating.
func operandValue(field string, kind Kind, operand any) (Value, error) {
	v, err := scalarValue(operand)
	if err != nil {
		return Value{}, fmt.Errorf("filter: field %q: %v", field, err)
	}
	if v.Kind == KindInt && kind == KindFloat {
		v = FloatValue(float64(v.Int))
	}
	if v.Kind != kind {
		e := &TypeError{Field: field, Want: kind, Got: v.Kind}
		return Value{}, fmt.Errorf("filter: %v", e)
	}
	return v, nil
}

// Fields returns the referenced field names in first-mention order.
func (p *Predicate) Fields() []string {
	if p == nil {
		return nil
	}
	return p.fields
}

// EqFields returns the fields compared with eq, in leaf order — the
// planner's bitmap candidates.
func (p *Predicate) EqFields() []string {
	if p == nil {
		return nil
	}
	var out []string
	for _, l := range p.leaves {
		if l.op == opEq {
			out = append(out, l.field)
		}
	}
	return out
}

// Match evaluates the conjunction against one row. A nil predicate
// matches everything; a nil map is a row with no metadata.
func (p *Predicate) Match(m Map) bool {
	if p == nil {
		return true
	}
	for i := range p.leaves {
		l := &p.leaves[i]
		v, present := m[l.field]
		if !l.match(v, present) {
			return false
		}
	}
	return true
}

// match evaluates one leaf against one field value.
func (l *leaf) match(v Value, present bool) bool {
	if l.op == opExists {
		return present == l.want
	}
	if !present {
		return false
	}
	switch l.op {
	case opEq:
		return v.Equal(l.val)
	case opNe:
		return !v.Equal(l.val)
	case opLt:
		return v.Less(l.val)
	case opLe:
		return !l.val.Less(v)
	case opGt:
		return l.val.Less(v)
	case opGe:
		return !v.Less(l.val)
	case opIn:
		for _, s := range l.set {
			if v.Equal(s) {
				return true
			}
		}
		return false
	}
	return false
}
