package meta

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestParseMapJSONTypes(t *testing.T) {
	m, err := ParseMapJSON([]byte(`{"tenant":"acme","ts":1700000000,"score":0.5,"hot":true}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Map{
		"tenant": StringValue("acme"),
		"ts":     IntValue(1700000000),
		"score":  FloatValue(0.5),
		"hot":    BoolValue(true),
	}
	if len(m) != len(want) {
		t.Fatalf("got %d fields, want %d", len(m), len(want))
	}
	for f, v := range want {
		if got := m[f]; !got.Equal(v) {
			t.Errorf("field %q = %+v, want %+v", f, got, v)
		}
	}
	// Exponent and fraction syntax force float even for integral values.
	m, err = ParseMapJSON([]byte(`{"a":1e3,"b":2.0}`))
	if err != nil {
		t.Fatal(err)
	}
	if m["a"].Kind != KindFloat || m["b"].Kind != KindFloat {
		t.Fatalf("1e3 and 2.0 should parse as floats, got %v %v", m["a"].Kind, m["b"].Kind)
	}
}

func TestParseMapJSONRejects(t *testing.T) {
	for _, bad := range []string{
		`{"a":null}`,
		`{"a":[1,2]}`,
		`{"a":{"b":1}}`,
		`{"":1}`,
		`[1,2]`,
		`{"a":1}trailing`,
		`{"a":99999999999999999999999999}`,
	} {
		if _, err := ParseMapJSON([]byte(bad)); err == nil {
			t.Errorf("ParseMapJSON(%s) accepted, want error", bad)
		}
	}
	for _, empty := range []string{"", "null", "{}"} {
		m, err := ParseMapJSON([]byte(empty))
		if err != nil || m != nil {
			t.Errorf("ParseMapJSON(%q) = %v, %v; want nil, nil", empty, m, err)
		}
	}
}

func TestRegistryFixedAtFirstWrite(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Map{"ts": IntValue(1), "tenant": StringValue("a")}); err != nil {
		t.Fatal(err)
	}
	v0 := r.Version()
	// Same kinds: fine, no version bump.
	if err := r.Register(Map{"ts": IntValue(2)}); err != nil {
		t.Fatal(err)
	}
	if r.Version() != v0 {
		t.Fatalf("re-registering an existing kind bumped the version")
	}
	// Kind conflict: typed rejection, registry unchanged.
	err := r.Register(Map{"ts": StringValue("nope"), "fresh": BoolValue(true)})
	if err == nil {
		t.Fatal("conflicting kind accepted")
	}
	if !strings.Contains(err.Error(), `"ts"`) || !strings.Contains(err.Error(), "int") {
		t.Fatalf("conflict error %q should name the field and its kind", err)
	}
	if _, ok := r.Kind("fresh"); ok {
		t.Fatal("a rejected write must not register its other fields")
	}
	if k, _ := r.Kind("ts"); k != KindInt {
		t.Fatalf("ts kind = %v after rejected write, want int", k)
	}
}

func TestRegistrySeed(t *testing.T) {
	r := NewRegistry()
	r.Seed(map[string]Kind{"a": KindInt})
	r.SeedRows([]Map{nil, {"b": StringValue("x")}, {"a": StringValue("conflict-loses")}})
	if k, _ := r.Kind("a"); k != KindInt {
		t.Fatalf("seeded kind overwritten: a = %v", k)
	}
	if k, _ := r.Kind("b"); k != KindString {
		t.Fatalf("row-seeded kind b = %v, want string", k)
	}
}

func kinds() map[string]Kind {
	return map[string]Kind{
		"tenant": KindString,
		"ts":     KindInt,
		"score":  KindFloat,
		"hot":    KindBool,
	}
}

func TestCompileFilterErrors(t *testing.T) {
	cases := []struct {
		raw  string
		want string // substring of the error
	}{
		{`{"field":"nope","eq":1}`, `unknown metadata field "nope"`},
		{`{"field":"ts","eq":"acme"}`, `holds int values, got string`},
		{`{"field":"ts","ge":17.5}`, `holds int values, got float`},
		{`{"field":"hot","lt":true}`, "not ordered"},
		{`{"field":"tenant"}`, "exactly one operator"},
		{`{"field":"tenant","eq":"a","ne":"b"}`, "exactly one operator"},
		{`{"field":"tenant","like":"a%"}`, `unknown operator "like"`},
		{`{"and":[{"field":"ts","eq":1}],"field":"ts"}`, "no other keys"},
		{`{"and":{}}`, "wants an array"},
		{`{"and":[]}`, "empty conjunction"},
		{`{"field":"ts","in":5}`, "wants an array"},
		{`{"field":"ts","exists":1}`, "wants true or false"},
		{`{"field":"ts","eq":null}`, "null is not a metadata value"},
		{`"just a string"`, "must be a JSON object"},
		{`{"field":"ts","eq":1}trailing`, "trailing data"},
	}
	for _, c := range cases {
		_, err := CompileFilter([]byte(c.raw), kinds())
		if err == nil {
			t.Errorf("CompileFilter(%s) accepted, want error containing %q", c.raw, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("CompileFilter(%s) error %q, want substring %q", c.raw, err, c.want)
		}
	}
	// nil / null filters compile to no predicate.
	for _, empty := range []string{"", "null", "  null  "} {
		p, err := CompileFilter([]byte(empty), kinds())
		if p != nil || err != nil {
			t.Errorf("CompileFilter(%q) = %v, %v; want nil, nil", empty, p, err)
		}
	}
}

func TestCompileFilterDepthBound(t *testing.T) {
	deep := `{"field":"ts","eq":1}`
	for i := 0; i < maxFilterDepth+2; i++ {
		deep = `{"and":[` + deep + `]}`
	}
	if _, err := CompileFilter([]byte(deep), kinds()); err == nil {
		t.Fatal("over-deep filter accepted")
	}
}

func TestPredicateMatch(t *testing.T) {
	row := Map{
		"tenant": StringValue("acme"),
		"ts":     IntValue(100),
		"score":  FloatValue(0.5),
		"hot":    BoolValue(true),
	}
	cases := []struct {
		raw  string
		m    Map
		want bool
	}{
		{`{"field":"tenant","eq":"acme"}`, row, true},
		{`{"field":"tenant","eq":"evil"}`, row, false},
		{`{"field":"tenant","ne":"evil"}`, row, true},
		{`{"field":"ts","ge":100}`, row, true},
		{`{"field":"ts","gt":100}`, row, false},
		{`{"field":"ts","le":100}`, row, true},
		{`{"field":"ts","lt":100}`, row, false},
		{`{"field":"score","ge":0.5}`, row, true},
		{`{"field":"score","gt":1}`, row, false},
		{`{"field":"ts","in":[1,100,7]}`, row, true},
		{`{"field":"ts","in":[]}`, row, false},
		{`{"field":"hot","eq":true}`, row, true},
		{`{"field":"hot","exists":true}`, row, true},
		{`{"field":"hot","exists":false}`, row, false},
		{`{"and":[{"field":"tenant","eq":"acme"},{"field":"ts","ge":100}]}`, row, true},
		{`{"and":[{"field":"tenant","eq":"acme"},{"field":"ts","gt":100}]}`, row, false},
		// Absent fields: every comparison is no-match except exists:false.
		{`{"field":"tenant","eq":"acme"}`, nil, false},
		{`{"field":"tenant","ne":"acme"}`, nil, false},
		{`{"field":"ts","lt":100}`, nil, false},
		{`{"field":"ts","exists":false}`, nil, true},
		{`{"field":"ts","exists":true}`, nil, false},
	}
	for _, c := range cases {
		p, err := CompileFilter([]byte(c.raw), kinds())
		if err != nil {
			t.Fatalf("CompileFilter(%s): %v", c.raw, err)
		}
		if got := p.Match(c.m); got != c.want {
			t.Errorf("Match(%s) on %v = %v, want %v", c.raw, c.m, got, c.want)
		}
	}
}

// blockRows builds a deterministic rowset: tenant cycles a..e, ts counts
// up, every third row has no metadata at all.
func blockRows(n int) []Map {
	rows := make([]Map, n)
	for i := range rows {
		if i%3 == 2 {
			continue
		}
		rows[i] = Map{
			"tenant": StringValue(string(rune('a' + i%5))),
			"ts":     IntValue(int64(i)),
			"hot":    BoolValue(i%2 == 0),
		}
	}
	return rows
}

// evalBits runs EvalBlock and returns the matched rows.
func evalBits(t *testing.T, p *Predicate, blk *Block, rows int, plan Plan) ([]int, Plan) {
	t.Helper()
	dst := make([]uint64, (rows+63)/64)
	used := p.EvalBlock(blk, rows, dst, plan)
	var out []int
	for i := 0; i < rows; i++ {
		if dst[i>>6]>>(uint(i)&63)&1 != 0 {
			out = append(out, i)
		}
	}
	return out, used
}

func TestEvalBlockPlansAgree(t *testing.T) {
	const n = 333
	rows := blockRows(n)
	blk := NewBlock(rows)
	if blk.Rows() != n {
		t.Fatalf("block rows = %d, want %d", blk.Rows(), n)
	}
	filters := []string{
		`{"field":"tenant","eq":"c"}`,
		`{"and":[{"field":"tenant","eq":"c"},{"field":"ts","ge":100}]}`,
		`{"and":[{"field":"hot","eq":true},{"field":"tenant","eq":"a"}]}`,
		`{"field":"ts","exists":false}`,
		`{"field":"ts","in":[3,4,5,6]}`,
	}
	for _, raw := range filters {
		p, err := CompileFilter([]byte(raw), kinds())
		if err != nil {
			t.Fatal(err)
		}
		inline, usedI := evalBits(t, p, blk, n, PlanInline)
		bm, usedB := evalBits(t, p, blk, n, PlanBitmap)
		if usedI != PlanInline {
			t.Fatalf("inline eval reported plan %v", usedI)
		}
		if fmt.Sprint(inline) != fmt.Sprint(bm) {
			t.Errorf("filter %s: inline %v != bitmap(%v) %v", raw, inline, usedB, bm)
		}
		// Cross-check every row against the row-at-a-time evaluator.
		want := 0
		for i, m := range rows {
			if p.Match(m) {
				want++
				_ = i
			}
		}
		if len(inline) != want {
			t.Errorf("filter %s: %d matches, want %d", raw, len(inline), want)
		}
	}
	// exists:false has no indexable eq leaf: bitmap must fall back.
	p, _ := CompileFilter([]byte(`{"field":"ts","exists":false}`), kinds())
	if _, used := evalBits(t, p, blk, n, PlanBitmap); used != PlanInline {
		t.Fatal("bitmap plan without an eq leaf should fall back to inline")
	}
	// eq on an indexed column reports the bitmap plan.
	p, _ = CompileFilter([]byte(`{"field":"tenant","eq":"c"}`), kinds())
	if _, used := evalBits(t, p, blk, n, PlanBitmap); used != PlanBitmap {
		t.Fatal("eq on a string column should use the bitmap plan when asked")
	}
}

func TestEvalBlockNilBlock(t *testing.T) {
	p, _ := CompileFilter([]byte(`{"field":"ts","exists":false}`), kinds())
	matched, _ := evalBits(t, p, nil, 130, PlanInline)
	if len(matched) != 130 {
		t.Fatalf("exists:false over a metadata-less base matched %d of 130", len(matched))
	}
	p, _ = CompileFilter([]byte(`{"field":"ts","eq":1}`), kinds())
	matched, _ = evalBits(t, p, nil, 130, PlanBitmap)
	if len(matched) != 0 {
		t.Fatalf("eq over a metadata-less base matched %d rows, want 0", len(matched))
	}
}

func TestEvalBlockRandomizedAgainstMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		rows := make([]Map, n)
		for i := range rows {
			if rng.Intn(4) == 0 {
				continue
			}
			rows[i] = Map{
				"tenant": StringValue(string(rune('a' + rng.Intn(3)))),
				"ts":     IntValue(int64(rng.Intn(50))),
			}
		}
		blk := NewBlock(rows)
		raw := fmt.Sprintf(`{"and":[{"field":"tenant","eq":"%c"},{"field":"ts","lt":%d}]}`,
			'a'+rune(rng.Intn(3)), rng.Intn(60))
		p, err := CompileFilter([]byte(raw), kinds())
		if err != nil {
			t.Fatal(err)
		}
		for _, plan := range []Plan{PlanInline, PlanBitmap} {
			got, _ := evalBits(t, p, blk, n, plan)
			j := 0
			for i, m := range rows {
				if p.Match(m) {
					if j >= len(got) || got[j] != i {
						t.Fatalf("trial %d plan %v: row %d missing from %v", trial, plan, i, got)
					}
					j++
				}
			}
			if j != len(got) {
				t.Fatalf("trial %d plan %v: %d extra matches", trial, plan, len(got)-j)
			}
		}
	}
}

func TestBlockRowRoundTrip(t *testing.T) {
	rows := blockRows(97)
	blk := NewBlock(rows)
	for i, want := range rows {
		got := blk.Row(i)
		if len(got) != len(want) {
			t.Fatalf("row %d: %d fields, want %d", i, len(got), len(want))
		}
		for f, v := range want {
			if gv, ok := got[f]; !ok || !gv.Equal(v) {
				t.Fatalf("row %d field %q = %+v, want %+v", i, f, gv, v)
			}
		}
	}
	if NewBlock([]Map{nil, nil, {}}) != nil {
		t.Fatal("a rowset with no metadata should build a nil block")
	}
}

func TestTrackerPlanner(t *testing.T) {
	tr := NewTracker()
	p, err := CompileFilter([]byte(`{"field":"tenant","eq":"acme"}`), kinds())
	if err != nil {
		t.Fatal(err)
	}
	// Cold start: inline, regardless of size.
	if got := tr.Choose(p, 10000); got != PlanInline {
		t.Fatalf("cold-start plan = %v, want inline", got)
	}
	// Observed selective: bitmap on big bases, inline on small ones.
	tr.Observe(p.Fields(), 10, 10000)
	if got := tr.Choose(p, 10000); got != PlanBitmap {
		t.Fatalf("selective plan = %v, want bitmap", got)
	}
	if got := tr.Choose(p, minBitmapRows-1); got != PlanInline {
		t.Fatalf("small-base plan = %v, want inline", got)
	}
	// Unselective traffic flips it back.
	tr.Observe(p.Fields(), 9000, 10000)
	if got := tr.Choose(p, 10000); got != PlanInline {
		t.Fatalf("unselective plan = %v, want inline", got)
	}
	// No eq leaf: always inline.
	pr, _ := CompileFilter([]byte(`{"field":"ts","ge":5}`), kinds())
	tr.Observe(pr.Fields(), 1, 10000)
	if got := tr.Choose(pr, 10000); got != PlanInline {
		t.Fatalf("range-only plan = %v, want inline", got)
	}
	tr.CountPlan(PlanBitmap)
	tr.CountPlan(PlanInline)
	tr.CountPlan(PlanInline)
	snap := tr.Snapshot()
	if snap.PlanInline != 2 || snap.PlanBitmap != 1 {
		t.Fatalf("plan counters = %d/%d, want 2/1", snap.PlanInline, snap.PlanBitmap)
	}
	if fs, ok := snap.Fields["tenant"]; !ok || fs.Scanned == 0 {
		t.Fatalf("snapshot lacks tenant observations: %+v", snap.Fields)
	}
}
