// Tracker: the planner's memory. It observes the selectivity of every
// filtered query per referenced field (matched live rows over scanned
// live rows, as atomic sums) and counts the plans the planner picked.
// One Tracker serves a whole store — the sharded store shares one across
// its shards, so estimates reflect global traffic and the stats/metrics
// surface aggregates for free. Plan choice never affects which rows a
// query returns, so this feedback loop is outside the bit-identity
// guarantee by construction.
package meta

import (
	"sync"
	"sync/atomic"
)

// BitmapSelectivity is the planner threshold: an equality leaf whose
// field's observed selectivity is at or below it sends the base segment
// to the bitmap plan.
const BitmapSelectivity = 0.05

// minBitmapRows is the base size below which probing an index cannot
// beat just sweeping the rows.
const minBitmapRows = 256

type fieldCounts struct {
	matched atomic.Uint64
	scanned atomic.Uint64
}

// Tracker accumulates per-field selectivity observations and plan
// counts. The zero value is not usable; construct with NewTracker.
type Tracker struct {
	mu     sync.Mutex
	fields map[string]*fieldCounts

	planInline atomic.Uint64
	planBitmap atomic.Uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{fields: make(map[string]*fieldCounts)}
}

// counts returns (creating on first use) the counters of one field.
func (t *Tracker) counts(field string) *fieldCounts {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.fields[field]
	if !ok {
		c = &fieldCounts{}
		t.fields[field] = c
	}
	return c
}

// Observe records one filtered query's outcome — matched live rows out
// of scanned live rows — against every field the predicate referenced.
func (t *Tracker) Observe(fields []string, matched, scanned int) {
	if scanned <= 0 {
		return
	}
	for _, f := range fields {
		c := t.counts(f)
		c.matched.Add(uint64(matched))
		c.scanned.Add(uint64(scanned))
	}
}

// Estimate returns the observed selectivity of a field (matched/scanned
// over all observations) and whether anything has been observed yet.
func (t *Tracker) Estimate(field string) (float64, bool) {
	t.mu.Lock()
	c, ok := t.fields[field]
	t.mu.Unlock()
	if !ok {
		return 1, false
	}
	scanned := c.scanned.Load()
	if scanned == 0 {
		return 1, false
	}
	return float64(c.matched.Load()) / float64(scanned), true
}

// Choose picks the evaluation plan for one base segment: bitmap when
// any equality leaf's field has observed selectivity at or below
// BitmapSelectivity and the segment is big enough for an index probe to
// win; inline otherwise (including the unobserved cold start — the
// first queries sweep, and their observations steer the rest).
func (t *Tracker) Choose(p *Predicate, baseRows int) Plan {
	if t == nil || p == nil || baseRows < minBitmapRows {
		return PlanInline
	}
	for _, f := range p.EqFields() {
		if est, ok := t.Estimate(f); ok && est <= BitmapSelectivity {
			return PlanBitmap
		}
	}
	return PlanInline
}

// CountPlan records one planner decision.
func (t *Tracker) CountPlan(p Plan) {
	if t == nil {
		return
	}
	if p == PlanBitmap {
		t.planBitmap.Add(1)
	} else {
		t.planInline.Add(1)
	}
}

// FieldStat is one field's accumulated observations.
type FieldStat struct {
	Matched uint64
	Scanned uint64
}

// Selectivity returns matched/scanned (1 when unobserved).
func (f FieldStat) Selectivity() float64 {
	if f.Scanned == 0 {
		return 1
	}
	return float64(f.Matched) / float64(f.Scanned)
}

// TrackerStats is a point-in-time snapshot for /v1/stats and /metrics.
type TrackerStats struct {
	Fields     map[string]FieldStat
	PlanInline uint64
	PlanBitmap uint64
}

// Snapshot captures the tracker's current state.
func (t *Tracker) Snapshot() TrackerStats {
	out := TrackerStats{
		PlanInline: t.planInline.Load(),
		PlanBitmap: t.planBitmap.Load(),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.fields) > 0 {
		out.Fields = make(map[string]FieldStat, len(t.fields))
		for f, c := range t.fields {
			out.Fields[f] = FieldStat{Matched: c.matched.Load(), Scanned: c.scanned.Load()}
		}
	}
	return out
}
