// Package meta implements typed per-object metadata and the predicate
// language of filtered search: a Value is one scalar of a fixed kind
// (int64, float64, string, bool), a Map is one object's field→Value
// record, a Registry pins each field to the kind of its first write, and
// a Predicate is a compiled conjunction of comparisons evaluated below
// the top-p truncation of the filter scan (see DESIGN.md §12).
//
// The package is storage-shape aware but storage-agnostic: the columnar
// Block (block.go) holds a base segment's metadata as per-field typed
// arrays with presence bitsets, while delta rows stay ordinary Maps.
// retrieval.Segmented owns one Block per base segment and a Map slice
// per delta segment; this package only evaluates over them.
package meta

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the type of a metadata value. A field's kind is fixed by its
// first write (see Registry); the zero Kind marks an invalid Value.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	}
	return "invalid"
}

// Value is one typed metadata scalar. Exactly the payload field matching
// Kind is meaningful; the struct is flat (no interface) so it gob-encodes
// without type registration and compares without allocation.
type Value struct {
	Kind Kind
	Int  int64
	Flt  float64
	Str  string
	Bool bool
}

// IntValue, FloatValue, StringValue and BoolValue construct typed values.
func IntValue(v int64) Value      { return Value{Kind: KindInt, Int: v} }
func FloatValue(v float64) Value  { return Value{Kind: KindFloat, Flt: v} }
func StringValue(v string) Value  { return Value{Kind: KindString, Str: v} }
func BoolValue(v bool) Value      { return Value{Kind: KindBool, Bool: v} }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.Int == o.Int
	case KindFloat:
		return v.Flt == o.Flt
	case KindString:
		return v.Str == o.Str
	case KindBool:
		return v.Bool == o.Bool
	}
	return false
}

// Less orders two values of the same orderable kind (int, float,
// string). Callers must not pass mismatched or bool kinds; the compiler
// rejects ordered comparisons on bool fields before evaluation.
func (v Value) Less(o Value) bool {
	switch v.Kind {
	case KindInt:
		return v.Int < o.Int
	case KindFloat:
		return v.Flt < o.Flt
	case KindString:
		return v.Str < o.Str
	}
	return false
}

// Any returns the value as a plain Go value, for JSON rendering.
func (v Value) Any() any {
	switch v.Kind {
	case KindInt:
		return v.Int
	case KindFloat:
		return v.Flt
	case KindString:
		return v.Str
	case KindBool:
		return v.Bool
	}
	return nil
}

// Map is one object's metadata record. A nil Map is a valid empty
// record; readers must not mutate a Map obtained from a store.
type Map map[string]Value

// Clone returns an independent copy of m (nil stays nil).
func (m Map) Clone() Map {
	if m == nil {
		return nil
	}
	out := make(Map, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ParseMapJSON parses a JSON object of field→scalar into a Map. Number
// literals without a fraction or exponent become ints, all others
// floats, so {"ts": 1700000000} pins ts to int and {"score": 0.5} pins
// score to float. null and absent input parse as an empty record;
// nested objects, arrays, and null field values are rejected.
func ParseMapJSON(raw []byte) (Map, error) {
	if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
		return nil, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var obj map[string]any
	if err := dec.Decode(&obj); err != nil {
		return nil, fmt.Errorf("metadata: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("metadata: trailing data after object")
	}
	if len(obj) == 0 {
		return nil, nil
	}
	out := make(Map, len(obj))
	for field, v := range obj {
		if field == "" {
			return nil, fmt.Errorf("metadata: empty field name")
		}
		val, err := scalarValue(v)
		if err != nil {
			return nil, fmt.Errorf("metadata field %q: %v", field, err)
		}
		out[field] = val
	}
	return out, nil
}

// scalarValue converts one decoded JSON value (with UseNumber) to a
// typed Value.
func scalarValue(v any) (Value, error) {
	switch x := v.(type) {
	case json.Number:
		return numberValue(x)
	case string:
		return StringValue(x), nil
	case bool:
		return BoolValue(x), nil
	case nil:
		return Value{}, fmt.Errorf("null is not a metadata value")
	}
	return Value{}, fmt.Errorf("values must be int, float, string, or bool")
}

// numberValue types a JSON number literal: integral syntax means int.
func numberValue(n json.Number) (Value, error) {
	s := n.String()
	if !strings.ContainsAny(s, ".eE") {
		i, err := n.Int64()
		if err != nil {
			return Value{}, fmt.Errorf("integer %s out of int64 range", s)
		}
		return IntValue(i), nil
	}
	f, err := n.Float64()
	if err != nil {
		return Value{}, fmt.Errorf("invalid number %s", s)
	}
	return FloatValue(f), nil
}

// TypeError is the rejection for a write or comparison whose value kind
// contradicts a field's registered kind. It is a client error: the
// serving layer answers it with a 400, never a 500.
type TypeError struct {
	Field string
	Want  Kind
	Got   Kind
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("metadata field %q holds %s values, got %s", e.Field, e.Want, e.Got)
}

// Registry is the per-store field→kind table: a field's kind is fixed by
// the first write that mentions it and every later write (and every
// filter comparison) must agree. Reads are one atomic load of an
// immutable snapshot, so the search path never contends with writers;
// Register copies on growth under a mutex, like every other
// copy-on-write structure in the store.
type Registry struct {
	mu    sync.Mutex
	kinds atomic.Pointer[map[string]Kind]
	ver   atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	empty := map[string]Kind{}
	r.kinds.Store(&empty)
	return r
}

// Kinds returns the current field→kind snapshot. The map is immutable
// and shared; callers must not modify it.
func (r *Registry) Kinds() map[string]Kind { return *r.kinds.Load() }

// Kind returns the registered kind of one field.
func (r *Registry) Kind(field string) (Kind, bool) {
	k, ok := r.Kinds()[field]
	return k, ok
}

// Version counts registry growth events. Persistence uses it to decide
// when the manifest's serialized kind table is stale.
func (r *Registry) Version() uint64 { return r.ver.Load() }

// Register validates md against the registry and registers every
// first-seen field. On a kind conflict it returns a *TypeError and
// registers nothing (a rejected write must not grow the table).
func (r *Registry) Register(md Map) error {
	if len(md) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.kinds.Load()
	var grown map[string]Kind
	for field, v := range md {
		if field == "" {
			return fmt.Errorf("metadata: empty field name")
		}
		if v.Kind < KindInt || v.Kind > KindBool {
			return fmt.Errorf("metadata field %q: invalid value kind", field)
		}
		if k, ok := cur[field]; ok {
			if k != v.Kind {
				return &TypeError{Field: field, Want: k, Got: v.Kind}
			}
			continue
		}
		if grown == nil {
			grown = make(map[string]Kind, len(cur)+len(md))
			for f, k := range cur {
				grown[f] = k
			}
		}
		grown[field] = v.Kind
	}
	if grown != nil {
		r.kinds.Store(&grown)
		r.ver.Add(1)
	}
	return nil
}

// Seed registers previously persisted kinds wholesale, used when a
// bundle reopens. Conflicts resolve in favor of the already-seeded kind
// (the manifest is written before any row, so it wins by construction).
func (r *Registry) Seed(kinds map[string]Kind) {
	if len(kinds) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.kinds.Load()
	grown := make(map[string]Kind, len(cur)+len(kinds))
	for f, k := range cur {
		grown[f] = k
	}
	changed := false
	for f, k := range kinds {
		if _, ok := grown[f]; !ok && k >= KindInt && k <= KindBool {
			grown[f] = k
			changed = true
		}
	}
	if changed {
		r.kinds.Store(&grown)
		r.ver.Add(1)
	}
}

// SeedRows re-registers the kinds found in stored rows — the recovery
// path for fields that first appeared in a delta frame written after the
// manifest's kind table was last rewritten.
func (r *Registry) SeedRows(rows []Map) {
	var kinds map[string]Kind
	for _, m := range rows {
		for f, v := range m {
			if kinds == nil {
				kinds = make(map[string]Kind)
			}
			if _, ok := kinds[f]; !ok {
				kinds[f] = v.Kind
			}
		}
	}
	r.Seed(kinds)
}

// SortedFields returns the registered field names in sorted order —
// stats rendering wants a deterministic listing.
func (r *Registry) SortedFields() []string {
	kinds := r.Kinds()
	out := make([]string, 0, len(kinds))
	for f := range kinds {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
