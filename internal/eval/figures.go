package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one curve of a Fig. 4/5/6-style plot: exact distance counts as
// a function of k, for one method at one accuracy percentage.
type Series struct {
	Method string
	Ks     []int
	Costs  []int
}

// FigureData computes the paper's "# distances for B% accuracy" curves for
// every method over the given ks.
func FigureData(methods []*Method, ks []int, pct float64) ([]Series, error) {
	out := make([]Series, 0, len(methods))
	for _, m := range methods {
		s := Series{Method: m.Name, Ks: append([]int(nil), ks...)}
		for _, k := range ks {
			opt, err := m.OptimumFor(k, pct)
			if err != nil {
				return nil, err
			}
			s.Costs = append(s.Costs, opt.Cost)
		}
		out = append(out, s)
	}
	return out, nil
}

// RenderFigure prints a figure as an aligned text table: one row per k,
// one column per method — the same information as the paper's log-scale
// plots.
func RenderFigure(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	if len(series) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	fmt.Fprintf(w, "%6s", "k")
	for _, s := range series {
		fmt.Fprintf(w, "  %12s", s.Method)
	}
	fmt.Fprintln(w)
	for i, k := range series[0].Ks {
		fmt.Fprintf(w, "%6d", k)
		for _, s := range series {
			fmt.Fprintf(w, "  %12d", s.Costs[i])
		}
		fmt.Fprintln(w)
	}
}

// TableRow is one row of Table 1: a (k, pct) setting with the exact
// distance count of every method.
type TableRow struct {
	K     int
	Pct   float64
	Costs map[string]int
}

// TableData computes Table 1 rows for all (k, pct) combinations.
func TableData(methods []*Method, ks []int, pcts []float64) ([]TableRow, error) {
	var rows []TableRow
	for _, k := range ks {
		for _, pct := range pcts {
			row := TableRow{K: k, Pct: pct, Costs: make(map[string]int, len(methods))}
			for _, m := range methods {
				opt, err := m.OptimumFor(k, pct)
				if err != nil {
					return nil, err
				}
				row.Costs[m.Name] = opt.Cost
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable prints Table 1 in the paper's layout: columns k, pct, then
// one column per method in the given order.
func RenderTable(w io.Writer, title string, rows []TableRow, methodOrder []string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%4s %5s", "k", "pct")
	for _, name := range methodOrder {
		fmt.Fprintf(w, "  %10s", name)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 10+12*len(methodOrder)))
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %5.0f", r.K, r.Pct)
		for _, name := range methodOrder {
			if c, ok := r.Costs[name]; ok {
				fmt.Fprintf(w, "  %10d", c)
			} else {
				fmt.Fprintf(w, "  %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// SpeedupRow summarizes a speed-up comparison (the Sec. 9 headline
// numbers): exact distances per query vs brute force.
type SpeedupRow struct {
	Method        string
	DistancesPerQ float64
	DBSize        int
}

// Speedup returns DBSize / DistancesPerQ.
func (r SpeedupRow) Speedup() float64 {
	if r.DistancesPerQ == 0 {
		return 0
	}
	return float64(r.DBSize) / r.DistancesPerQ
}

// RenderSpeedups prints speed-up rows sorted by descending speed-up.
func RenderSpeedups(w io.Writer, title string, rows []SpeedupRow) {
	fmt.Fprintf(w, "%s\n", title)
	sorted := append([]SpeedupRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Speedup() > sorted[j].Speedup() })
	fmt.Fprintf(w, "%14s  %14s  %10s\n", "method", "distances/query", "speed-up")
	for _, r := range sorted {
		fmt.Fprintf(w, "%14s  %14.1f  %9.1fx\n", r.Method, r.DistancesPerQ, r.Speedup())
	}
}
