package eval

import (
	"bytes"
	"strings"
	"testing"

	"qse/internal/core"
	"qse/internal/fastmap"
	"qse/internal/lipschitz"
	"qse/internal/metrics"
	"qse/internal/space"
	"qse/internal/stats"
)

func l2(a, b []float64) float64 { return metrics.L2(a, b) }

func clustered(seed int64, n, k int) [][]float64 {
	rng := stats.NewRand(seed)
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = []float64{rng.Float64(), rng.Float64()}
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[i%k]
		pts[i] = []float64{c[0] + rng.NormFloat64()*0.05, c[1] + rng.NormFloat64()*0.05}
	}
	return pts
}

func TestEvaluateDimIdentityEmbedding(t *testing.T) {
	// When the "embedding" is the identity and the filter metric (L1)
	// agrees with the true metric (use L1 as the true metric too), the
	// filter ordering equals the true ordering, so PNeeded == k exactly.
	db := clustered(1, 60, 5)
	queries := clustered(2, 10, 5)
	l1 := func(a, b []float64) float64 { return metrics.L1(a, b) }
	gt := space.NewGroundTruth(l1, queries, db)
	ks := []int{1, 3, 5}
	de, err := EvaluateDim(db, queries, nil, 0, gt, ks)
	if err != nil {
		t.Fatal(err)
	}
	if de.Dims != 2 || de.EmbedCost != 0 {
		t.Fatalf("meta wrong: %+v", de)
	}
	for ki, k := range ks {
		for qi, p := range de.PNeeded[ki] {
			if p != k {
				t.Errorf("k=%d q=%d: PNeeded=%d, want %d (perfect filter)", k, qi, p, k)
			}
		}
	}
}

func TestEvaluateDimWorsePNeededForWorseEmbedding(t *testing.T) {
	// A 1D projection (just the x coordinate) must need at least as many
	// candidates as the faithful 2D identity.
	db := clustered(3, 80, 6)
	queries := clustered(4, 12, 6)
	gt := space.NewGroundTruth(l2, queries, db)
	ks := []int{1, 5}
	full, err := EvaluateDim(db, queries, nil, 0, gt, ks)
	if err != nil {
		t.Fatal(err)
	}
	oneD, err := EvaluateDim(sliceVecs(db, 1), sliceVecs(queries, 1), nil, 0, gt, ks)
	if err != nil {
		t.Fatal(err)
	}
	var sumFull, sumOne int
	for ki := range ks {
		for qi := range queries {
			sumFull += full.PNeeded[ki][qi]
			sumOne += oneD.PNeeded[ki][qi]
		}
	}
	if sumOne < sumFull {
		t.Errorf("1D projection (%d) should not beat 2D identity (%d)", sumOne, sumFull)
	}
}

func TestEvaluateDimValidation(t *testing.T) {
	db := clustered(5, 20, 3)
	queries := clustered(6, 5, 3)
	gt := space.NewGroundTruth(l2, queries, db)
	if _, err := EvaluateDim(nil, queries, nil, 0, gt, []int{1}); err == nil {
		t.Error("empty db should error")
	}
	if _, err := EvaluateDim(db, queries, nil, 0, gt, []int{3, 2}); err == nil {
		t.Error("non-ascending ks should error")
	}
	if _, err := EvaluateDim(db, queries, nil, 0, gt, []int{100}); err == nil {
		t.Error("k > dbsize should error")
	}
	if _, err := EvaluateDim(db, queries, [][]float64{{1, 1}}, 0, gt, []int{1}); err == nil {
		t.Error("weights/queries length mismatch should error")
	}
	if _, err := EvaluateDim(db, queries[:3], nil, 0, gt, []int{1}); err == nil {
		t.Error("gt/queries mismatch should error")
	}
}

func TestOptimumForPicksCheapestDim(t *testing.T) {
	m := &Method{
		Name:   "synthetic",
		Ks:     []int{1},
		DBSize: 1000,
		Entries: []DimEval{
			{Dims: 1, EmbedCost: 1, PNeeded: [][]int{{500, 500}}},
			{Dims: 4, EmbedCost: 4, PNeeded: [][]int{{40, 60}}},
			{Dims: 16, EmbedCost: 160, PNeeded: [][]int{{5, 7}}},
		},
	}
	opt, err := m.OptimumFor(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// d=4: 4+60 = 64; d=16: 160+7 = 167; d=1: 501. Best is 64.
	if opt.Cost != 64 || opt.Dims != 4 || opt.P != 60 {
		t.Errorf("Optimum = %+v", opt)
	}
	// At 50% accuracy d=4 needs only 40: cost 44.
	opt, err = m.OptimumFor(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost != 44 {
		t.Errorf("50%% Optimum = %+v", opt)
	}
}

func TestOptimumNeverWorseThanBruteForce(t *testing.T) {
	m := &Method{
		Name:   "bad",
		Ks:     []int{1},
		DBSize: 100,
		Entries: []DimEval{
			{Dims: 2, EmbedCost: 90, PNeeded: [][]int{{100}}},
		},
	}
	opt, err := m.OptimumFor(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > 100 {
		t.Errorf("cost %d exceeds brute force", opt.Cost)
	}
}

func TestOptimumForUnknownK(t *testing.T) {
	m := &Method{Name: "x", Ks: []int{1}, DBSize: 10,
		Entries: []DimEval{{Dims: 1, EmbedCost: 0, PNeeded: [][]int{{1}}}}}
	if _, err := m.OptimumFor(7, 90); err == nil {
		t.Error("unknown k should error")
	}
	empty := &Method{Name: "y", Ks: []int{1}, DBSize: 10}
	if _, err := empty.OptimumFor(1, 90); err == nil {
		t.Error("no entries should error")
	}
}

func TestCoreAndFastMapMethodsEndToEnd(t *testing.T) {
	db := clustered(7, 250, 8)
	queries := clustered(8, 25, 8)
	gt := space.NewGroundTruth(l2, queries, db)
	ks := []int{1, 5, 10}

	opts := core.DefaultOptions()
	opts.Rounds = 20
	opts.NumCandidates = 30
	opts.NumTraining = 60
	opts.NumTriples = 1200
	opts.EmbeddingsPerRound = 25
	opts.IntervalsPerEmbedding = 5
	opts.Seed = 3
	model, _, err := core.Train(db, l2, opts)
	if err != nil {
		t.Fatal(err)
	}
	grid := DefaultDimsGrid(model.Dims())
	mCore, err := CoreMethod("Se-QS", model, db, queries, gt, ks, grid)
	if err != nil {
		t.Fatal(err)
	}

	fm, err := fastmap.Build(db, l2, fastmap.Options{Dims: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mFM, err := FastMapMethod("FastMap", fm, db, queries, gt, ks, DefaultDimsGrid(fm.Dims()))
	if err != nil {
		t.Fatal(err)
	}

	for _, m := range []*Method{mCore, mFM} {
		for _, k := range ks {
			for _, pct := range []float64{90, 100} {
				opt, err := m.OptimumFor(k, pct)
				if err != nil {
					t.Fatalf("%s k=%d: %v", m.Name, k, err)
				}
				if opt.Cost <= 0 || opt.Cost > len(db) {
					t.Errorf("%s k=%d pct=%v: cost %d out of range", m.Name, k, pct, opt.Cost)
				}
				if opt.P < k {
					t.Errorf("%s k=%d: optimal p=%d < k", m.Name, k, opt.P)
				}
			}
		}
	}

	// Both learned methods must beat brute force by a wide margin at 90%.
	opt, _ := mCore.OptimumFor(1, 90)
	if opt.Cost > len(db)/2 {
		t.Errorf("Se-QS 90%% cost %d is not a speedup over %d", opt.Cost, len(db))
	}
}

func TestFigureAndTableRendering(t *testing.T) {
	m := &Method{
		Name:   "M1",
		Ks:     []int{1, 2},
		DBSize: 50,
		Entries: []DimEval{
			{Dims: 2, EmbedCost: 2, PNeeded: [][]int{{3, 4}, {5, 6}}},
		},
	}
	series, err := FigureData([]*Method{m}, []int{1, 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Costs) != 2 {
		t.Fatalf("series shape: %+v", series)
	}
	var buf bytes.Buffer
	RenderFigure(&buf, "test figure", series)
	out := buf.String()
	if !strings.Contains(out, "test figure") || !strings.Contains(out, "M1") {
		t.Errorf("figure output missing parts:\n%s", out)
	}

	rows, err := TableData([]*Method{m}, []int{1}, []float64{90, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	buf.Reset()
	RenderTable(&buf, "test table", rows, []string{"M1", "missing"})
	out = buf.String()
	if !strings.Contains(out, "test table") || !strings.Contains(out, "-") {
		t.Errorf("table output missing parts:\n%s", out)
	}

	buf.Reset()
	RenderFigure(&buf, "empty", nil)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty figure should say so")
	}
}

func TestSpeedupRow(t *testing.T) {
	r := SpeedupRow{Method: "Se-QS", DistancesPerQ: 100, DBSize: 5000}
	if r.Speedup() != 50 {
		t.Errorf("Speedup = %v", r.Speedup())
	}
	zero := SpeedupRow{DistancesPerQ: 0, DBSize: 10}
	if zero.Speedup() != 0 {
		t.Error("zero distances should not divide by zero")
	}
	var buf bytes.Buffer
	RenderSpeedups(&buf, "speedups", []SpeedupRow{r})
	if !strings.Contains(buf.String(), "50.0x") {
		t.Errorf("render: %s", buf.String())
	}
}

func TestDefaultDimsGrid(t *testing.T) {
	got := DefaultDimsGrid(20)
	want := []int{1, 2, 4, 8, 16, 20}
	if len(got) != len(want) {
		t.Fatalf("grid = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid = %v, want %v", got, want)
		}
	}
	if g := DefaultDimsGrid(1); len(g) != 1 || g[0] != 1 {
		t.Errorf("grid(1) = %v", g)
	}
}

func TestCleanGrid(t *testing.T) {
	got := cleanGrid([]int{8, 2, 2, 0, -1, 100}, 10)
	want := []int{2, 8}
	if len(got) != len(want) || got[0] != 2 || got[1] != 8 {
		t.Errorf("cleanGrid = %v, want %v", got, want)
	}
}

func TestFig1Toy(t *testing.T) {
	res := Fig1Toy(42)
	if res.Triples != 10*20*19 {
		t.Fatalf("triples = %d, want %d", res.Triples, 10*20*19)
	}
	// The paper's qualitative claims:
	// (1) the 3D embedding beats every single coordinate globally;
	for r := 0; r < 3; r++ {
		if res.GlobalF >= res.GlobalRef[r] {
			t.Errorf("global F (%.3f) should beat F^r%d (%.3f)", res.GlobalF, r+1, res.GlobalRef[r])
		}
	}
	// (2) near reference r_i, the single coordinate F^{r_i} beats F for at
	// least 2 of the 3 planted queries (the paper's draw shows all 3; tiny
	// samples make one exception acceptable for arbitrary seeds).
	wins := 0
	for r := 0; r < 3; r++ {
		if res.NearRef[r] < res.NearF[r] {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("query-adjacent 1D embeddings won only %d/3 times: %+v", wins, res)
	}
	// Failure rates are rates.
	for _, v := range []float64{res.GlobalF, res.GlobalRef[0], res.NearF[0], res.NearRef[0]} {
		if v < 0 || v > 1 {
			t.Errorf("failure rate %v out of [0,1]", v)
		}
	}
}

func TestLipschitzMethod(t *testing.T) {
	db := clustered(11, 200, 8)
	queries := clustered(12, 20, 8)
	gt := space.NewGroundTruth(l2, queries, db)
	lm, err := lipschitz.Build(db, l2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LipschitzMethod("Lipschitz", lm, db, queries, gt, []int{1, 5}, DefaultDimsGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.OptimumFor(1, 90)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost <= 0 || opt.Cost > len(db) {
		t.Errorf("cost %d out of range", opt.Cost)
	}
	// Embedding cost at dimension d must be d (one distance per reference).
	for _, e := range m.Entries {
		if e.EmbedCost != e.Dims {
			t.Errorf("dim %d has embed cost %d", e.Dims, e.EmbedCost)
		}
	}
}
