package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSeriesCSV(t *testing.T) {
	series := []Series{
		{Method: "FastMap", Ks: []int{1, 10}, Costs: []int{100, 200}},
		{Method: "Se-QS", Ks: []int{1, 10}, Costs: []int{40, 80}},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if lines[0] != "k,FastMap,Se-QS" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,100,40" || lines[2] != "10,200,80" {
		t.Errorf("rows = %v", lines[1:])
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, nil); err == nil {
		t.Error("empty series should error")
	}
	ragged := []Series{
		{Method: "A", Ks: []int{1, 2}, Costs: []int{1, 2}},
		{Method: "B", Ks: []int{1, 2}, Costs: []int{1}},
	}
	if err := WriteSeriesCSV(&buf, ragged); err == nil {
		t.Error("ragged series should error")
	}
}

func TestWriteTableCSV(t *testing.T) {
	rows := []TableRow{
		{K: 1, Pct: 90, Costs: map[string]int{"A": 5}},
		{K: 1, Pct: 99.5, Costs: map[string]int{"A": 9}},
	}
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, rows, []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "k,pct,A,B" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,90,5," {
		t.Errorf("row = %q", lines[1])
	}
	if lines[2] != "1,99.5,9," {
		t.Errorf("row = %q", lines[2])
	}
	if err := WriteTableCSV(&buf, nil, nil); err == nil {
		t.Error("empty rows should error")
	}
}
