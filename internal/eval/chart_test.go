package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderChartBasics(t *testing.T) {
	series := []Series{
		{Method: "FastMap", Ks: []int{1, 10, 50}, Costs: []int{1000, 2000, 4000}},
		{Method: "Se-QS", Ks: []int{1, 10, 50}, Costs: []int{100, 200, 400}},
	}
	var buf bytes.Buffer
	RenderChart(&buf, "test chart", series, 10)
	out := buf.String()
	for _, want := range []string{"test chart", "F=FastMap", "S=Se-QS", "(k)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Cheap method's marks must appear on lower rows than the expensive
	// method's: find first row containing F and first containing S.
	lines := strings.Split(out, "\n")
	firstF, firstS := -1, -1
	for i, line := range lines {
		if strings.Contains(line, "|") {
			body := line[strings.Index(line, "|"):]
			if firstF < 0 && strings.Contains(body, "F") {
				firstF = i
			}
			if firstS < 0 && strings.Contains(body, "S") {
				firstS = i
			}
		}
	}
	if firstF < 0 || firstS < 0 {
		t.Fatalf("marks missing:\n%s", out)
	}
	if firstF >= firstS {
		t.Errorf("expensive method should plot above cheap one:\n%s", out)
	}
}

func TestRenderChartCollision(t *testing.T) {
	series := []Series{
		{Method: "Aaa", Ks: []int{1}, Costs: []int{100}},
		{Method: "Bbb", Ks: []int{1}, Costs: []int{100}},
	}
	var buf bytes.Buffer
	RenderChart(&buf, "collide", series, 6)
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("overlapping marks should render '*':\n%s", buf.String())
	}
}

func TestRenderChartEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	RenderChart(&buf, "empty", nil, 0)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart should say so")
	}
	buf.Reset()
	RenderChart(&buf, "zeros", []Series{{Method: "X", Ks: []int{1}, Costs: []int{0}}}, 0)
	if !strings.Contains(buf.String(), "no positive costs") {
		t.Error("all-zero chart should say so")
	}
	buf.Reset()
	// Constant series: hi == lo path.
	RenderChart(&buf, "flat", []Series{{Method: "X", Ks: []int{1, 2}, Costs: []int{50, 50}}}, 0)
	if !strings.Contains(buf.String(), "X=X") {
		t.Errorf("flat chart should render:\n%s", buf.String())
	}
}

func TestChartMarksUnique(t *testing.T) {
	series := []Series{
		{Method: "Se-QI"}, {Method: "Se-QS"}, {Method: "SSS"}, {Method: "S"},
	}
	marks := chartMarks(series)
	seen := map[byte]bool{}
	for i, m := range marks {
		if seen[m] {
			t.Fatalf("duplicate mark %c at %d: %v", m, i, marks)
		}
		seen[m] = true
	}
	// First gets S, second should pick a different letter (E or Q).
	if marks[0] != 'S' {
		t.Errorf("marks = %c", marks[0])
	}
	if marks[1] == 'S' {
		t.Error("second series must not reuse S")
	}
}
