package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSeriesCSV emits figure series as CSV: one row per k, one column per
// method, suitable for external plotting. Column order follows the series
// order.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("eval: no series")
	}
	cw := csv.NewWriter(w)
	header := []string{"k"}
	for _, s := range series {
		header = append(header, s.Method)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, k := range series[0].Ks {
		row := []string{strconv.Itoa(k)}
		for _, s := range series {
			if len(s.Costs) != len(series[0].Ks) {
				return fmt.Errorf("eval: series %q has %d costs, want %d", s.Method, len(s.Costs), len(series[0].Ks))
			}
			row = append(row, strconv.Itoa(s.Costs[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableCSV emits Table 1 rows as CSV with columns k, pct, then one
// column per method in the given order. Missing methods are left empty.
func WriteTableCSV(w io.Writer, rows []TableRow, methodOrder []string) error {
	if len(rows) == 0 {
		return fmt.Errorf("eval: no rows")
	}
	cw := csv.NewWriter(w)
	header := append([]string{"k", "pct"}, methodOrder...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		row := []string{strconv.Itoa(r.K), strconv.FormatFloat(r.Pct, 'f', -1, 64)}
		for _, name := range methodOrder {
			if c, ok := r.Costs[name]; ok {
				row = append(row, strconv.Itoa(c))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
