package eval

import (
	"math/rand"

	"qse/internal/embed"
	"qse/internal/metrics"
	"qse/internal/space"
)

// Fig1Result reproduces the toy experiment of the paper's Figure 1: the
// unit square with 20 database points, 3 of them reference objects, and 10
// query points, 3 of which sit next to the references. It reports triple
// failure rates for the 3-dimensional reference embedding F under L1 and
// for each 1D embedding F^{r_i}, globally and restricted to the query near
// each reference.
//
// The paper's observed values (23.5% global for F; 39.2/36.4/26.6% for the
// F^{r_i}; and, restricted to q_i, 11.6% for F vs 5.8% for F^{r_1}) depend
// on its specific random draw; the claims the experiment supports — F beats
// every F^{r_i} globally, while near r_i the single coordinate F^{r_i}
// beats F — are what this reproduction checks.
type Fig1Result struct {
	// GlobalF is the failure rate of the 3D embedding over all triples.
	GlobalF float64
	// GlobalRef[i] is the global failure rate of F^{r_i}.
	GlobalRef [3]float64
	// NearF[i] is the failure rate of F on triples whose query is q_i
	// (the query adjacent to r_i).
	NearF [3]float64
	// NearRef[i] is the failure rate of F^{r_i} on the same triples.
	NearRef [3]float64
	// Triples is the total number of triples evaluated.
	Triples int
}

// Fig1Toy runs the toy experiment with the given seed.
func Fig1Toy(seed int64) Fig1Result {
	rng := rand.New(rand.NewSource(seed))
	l2 := func(a, b []float64) float64 { return metrics.L2(a, b) }

	// 20 database points in the unit square; the first three double as
	// reference objects, re-drawn until they are mutually distant so the
	// "near r_i" regions are distinct (as in the paper's figure).
	var db [][]float64
	for {
		db = db[:0]
		for i := 0; i < 20; i++ {
			db = append(db, []float64{rng.Float64(), rng.Float64()})
		}
		d01 := l2(db[0], db[1])
		d02 := l2(db[0], db[2])
		d12 := l2(db[1], db[2])
		if d01 > 0.4 && d02 > 0.4 && d12 > 0.4 {
			break
		}
	}
	refs := db[:3]

	// 10 queries; the first three are tiny perturbations of the references.
	queries := make([][]float64, 0, 10)
	for i := 0; i < 3; i++ {
		queries = append(queries, []float64{
			refs[i][0] + rng.NormFloat64()*0.01,
			refs[i][1] + rng.NormFloat64()*0.01,
		})
	}
	for len(queries) < 10 {
		queries = append(queries, []float64{rng.Float64(), rng.Float64()})
	}

	set := &embed.Set[[]float64]{Candidates: refs, Dist: l2}
	defs := []embed.Def{
		{Kind: embed.KindReference, A: 0, Scale: 1},
		{Kind: embed.KindReference, A: 1, Scale: 1},
		{Kind: embed.KindReference, A: 2, Scale: 1},
	}

	dbVecs := make([][]float64, len(db))
	for i, x := range db {
		dbVecs[i] = set.EmbedAll(defs, x)
	}
	qVecs := make([][]float64, len(queries))
	for i, q := range queries {
		qVecs[i] = set.EmbedAll(defs, q)
	}

	var res Fig1Result
	var globalOutF []float64
	var globalLabels []int
	globalOutRef := [3][]float64{}
	nearOutF := [3][]float64{}
	nearLabels := [3][]int{}
	nearOutRef := [3][]float64{}

	for qi, q := range queries {
		for a := 0; a < len(db); a++ {
			for b := 0; b < len(db); b++ {
				if a == b {
					continue
				}
				label := embed.TripleType(l2(q, db[a]), l2(q, db[b]))
				outF := embed.ClassifyVec(func(x, y []float64) float64 { return metrics.L1(x, y) },
					qVecs[qi], dbVecs[a], dbVecs[b])
				globalOutF = append(globalOutF, outF)
				globalLabels = append(globalLabels, label)
				for r := 0; r < 3; r++ {
					outR := embed.Classify(qVecs[qi][r], dbVecs[a][r], dbVecs[b][r])
					globalOutRef[r] = append(globalOutRef[r], outR)
					if qi == r {
						nearOutF[r] = append(nearOutF[r], outF)
						nearOutRef[r] = append(nearOutRef[r], outR)
						nearLabels[r] = append(nearLabels[r], label)
					}
				}
				res.Triples++
			}
		}
	}

	res.GlobalF = embed.FailureRate(globalOutF, globalLabels)
	for r := 0; r < 3; r++ {
		res.GlobalRef[r] = embed.FailureRate(globalOutRef[r], globalLabels)
		res.NearF[r] = embed.FailureRate(nearOutF[r], nearLabels[r])
		res.NearRef[r] = embed.FailureRate(nearOutRef[r], nearLabels[r])
	}
	return res
}

// GroundTruthFor is a convenience re-export so experiment drivers only
// import eval.
func GroundTruthFor[T any](dist space.Distance[T], queries, db []T) *space.GroundTruth {
	return space.NewGroundTruth(dist, queries, db)
}
