// Package eval implements the experimental protocol of Sec. 9: for every
// embedding method, every embedding dimensionality d and every query, it
// measures how many filter-step candidates p are needed to capture all k
// true nearest neighbors; then, for each (k, accuracy B) pair, it reports
// the minimum total number of exact distance computations per query
// (embedding cost + p) over the optimal choice of d and p — the quantity
// plotted in Figs. 4–6 and tabulated in Table 1.
package eval

import (
	"fmt"
	"sort"

	"qse/internal/core"
	"qse/internal/fastmap"
	"qse/internal/lipschitz"
	"qse/internal/metrics"
	"qse/internal/space"
	"qse/internal/stats"
)

// DimEval is one method evaluated at one dimensionality.
type DimEval struct {
	Dims      int
	EmbedCost int
	// PNeeded[ki][qi] is the number of filter candidates query qi needs so
	// that all Ks[ki] of its true nearest neighbors survive the filter.
	PNeeded [][]int
}

// Method is one embedding method evaluated across a dimensionality grid.
type Method struct {
	Name    string
	Ks      []int
	Entries []DimEval
	// DBSize is the database size; brute force costs this many distances.
	DBSize int
}

// EvaluateDim computes PNeeded for one embedding at one dimensionality.
// queryWeights may be nil (unweighted L1 filter) or per-query weight
// vectors (query-sensitive filter). gt must rank every query against the
// same database order as dbVecs. ks must be ascending and positive.
func EvaluateDim(dbVecs, queryVecs, queryWeights [][]float64, embedCost int, gt *space.GroundTruth, ks []int) (DimEval, error) {
	if len(queryVecs) == 0 || len(dbVecs) == 0 {
		return DimEval{}, fmt.Errorf("eval: empty vectors")
	}
	if queryWeights != nil && len(queryWeights) != len(queryVecs) {
		return DimEval{}, fmt.Errorf("eval: %d weight vectors for %d queries", len(queryWeights), len(queryVecs))
	}
	if len(gt.Ranked) != len(queryVecs) {
		return DimEval{}, fmt.Errorf("eval: ground truth has %d queries, vectors %d", len(gt.Ranked), len(queryVecs))
	}
	if err := checkKs(ks, len(dbVecs)); err != nil {
		return DimEval{}, err
	}
	dims := len(dbVecs[0])
	de := DimEval{
		Dims:      dims,
		EmbedCost: embedCost,
		PNeeded:   make([][]int, len(ks)),
	}
	for ki := range ks {
		de.PNeeded[ki] = make([]int, len(queryVecs))
	}
	kmax := ks[len(ks)-1]

	dists := make([]float64, len(dbVecs))
	for qi, qv := range queryVecs {
		var w []float64
		if queryWeights != nil {
			w = queryWeights[qi]
		}
		for i, v := range dbVecs {
			if w == nil {
				dists[i] = metrics.L1(qv, v)
			} else {
				dists[i] = metrics.WeightedL1(w, qv, v)
			}
		}
		targets := gt.TrueKNN(qi, kmax)
		// Rank of each true neighbor under the deterministic filter order
		// (ascending distance, ties by index).
		ranks := make([]int, len(targets))
		for ti, target := range targets {
			td := dists[target]
			rank := 0
			for i, d := range dists {
				if d < td || (d == td && i < target) {
					rank++
				}
			}
			ranks[ti] = rank
		}
		// PNeeded for k is 1 + the max rank among the first k targets.
		worst := 0
		ki := 0
		for t := 0; t < len(targets); t++ {
			if ranks[t] > worst {
				worst = ranks[t]
			}
			for ki < len(ks) && ks[ki] == t+1 {
				de.PNeeded[ki][qi] = worst + 1
				ki++
			}
		}
		for ; ki < len(ks); ki++ {
			// ks beyond the database size: everything is needed.
			de.PNeeded[ki][qi] = len(dbVecs)
		}
	}
	return de, nil
}

func checkKs(ks []int, dbSize int) error {
	if len(ks) == 0 {
		return fmt.Errorf("eval: no ks")
	}
	prev := 0
	for _, k := range ks {
		if k <= prev {
			return fmt.Errorf("eval: ks must be ascending and positive, got %v", ks)
		}
		if k > dbSize {
			return fmt.Errorf("eval: k = %d exceeds database size %d", k, dbSize)
		}
		prev = k
	}
	return nil
}

// Optimum holds the best operating point of a method for one (k, pct).
type Optimum struct {
	Cost int // exact distances per query: EmbedCost + p
	Dims int
	P    int
}

// OptimumFor finds, as the paper does, "the optimal parameters (number of
// dimensions and p) under which we would successfully retrieve all k true
// nearest neighbors for a percentage of query objects equal to B, while
// minimizing the total number of exact distance computations".
func (m *Method) OptimumFor(k int, pct float64) (Optimum, error) {
	ki := -1
	for i, kk := range m.Ks {
		if kk == k {
			ki = i
			break
		}
	}
	if ki < 0 {
		return Optimum{}, fmt.Errorf("eval: k = %d was not evaluated (have %v)", k, m.Ks)
	}
	if len(m.Entries) == 0 {
		return Optimum{}, fmt.Errorf("eval: method %q has no entries", m.Name)
	}
	best := Optimum{Cost: 1 << 62}
	for _, e := range m.Entries {
		p := stats.PercentileInt(e.PNeeded[ki], pct)
		// p can never usefully exceed the database size.
		if p > m.DBSize {
			p = m.DBSize
		}
		cost := e.EmbedCost + p
		// The brute-force fallback is always available: never report worse.
		if bf := m.DBSize; cost > bf {
			cost = bf
		}
		if cost < best.Cost {
			best = Optimum{Cost: cost, Dims: e.Dims, P: p}
		}
	}
	return best, nil
}

// CoreMethod evaluates a trained BoostMap-family model across the given
// dimensionality grid. The database and queries are embedded once with the
// full model; every grid point reuses vector prefixes (valid because
// Model.Prefix preserves coordinate order). Grid entries above the model's
// dimensionality are dropped.
func CoreMethod[T any](name string, model *core.Model[T], db, queries []T, gt *space.GroundTruth, ks, dimsGrid []int) (*Method, error) {
	dbVecs := make([][]float64, len(db))
	for i, x := range db {
		dbVecs[i] = model.Embed(x)
	}
	qVecs := make([][]float64, len(queries))
	for i, q := range queries {
		qVecs[i] = model.Embed(q)
	}

	m := &Method{Name: name, Ks: append([]int(nil), ks...), DBSize: len(db)}
	for _, d := range cleanGrid(dimsGrid, model.Dims()) {
		prefix, ok := model.PrefixForDims(d)
		if !ok {
			continue
		}
		pdb := sliceVecs(dbVecs, d)
		pq := sliceVecs(qVecs, d)
		weights := make([][]float64, len(queries))
		for qi := range pq {
			weights[qi] = prefix.QueryWeights(pq[qi])
		}
		de, err := EvaluateDim(pdb, pq, weights, prefix.EmbedCost(), gt, ks)
		if err != nil {
			return nil, fmt.Errorf("eval: %s at d=%d: %w", name, d, err)
		}
		m.Entries = append(m.Entries, de)
	}
	if len(m.Entries) == 0 {
		return nil, fmt.Errorf("eval: no evaluable dimensionalities for %s (model has %d dims)", name, model.Dims())
	}
	return m, nil
}

// FastMapMethod evaluates a FastMap model across the grid; its filter
// distance is the unweighted L1 and its embedding costs 2 exact distances
// per dimension.
func FastMapMethod[T any](name string, fm *fastmap.Model[T], db, queries []T, gt *space.GroundTruth, ks, dimsGrid []int) (*Method, error) {
	dbVecs := make([][]float64, len(db))
	for i, x := range db {
		dbVecs[i] = fm.Embed(x)
	}
	qVecs := make([][]float64, len(queries))
	for i, q := range queries {
		qVecs[i] = fm.Embed(q)
	}
	m := &Method{Name: name, Ks: append([]int(nil), ks...), DBSize: len(db)}
	for _, d := range cleanGrid(dimsGrid, fm.Dims()) {
		de, err := EvaluateDim(sliceVecs(dbVecs, d), sliceVecs(qVecs, d), nil, 2*d, gt, ks)
		if err != nil {
			return nil, fmt.Errorf("eval: %s at d=%d: %w", name, d, err)
		}
		m.Entries = append(m.Entries, de)
	}
	if len(m.Entries) == 0 {
		return nil, fmt.Errorf("eval: no evaluable dimensionalities for %s", name)
	}
	return m, nil
}

// LipschitzMethod evaluates the plain vantage-object baseline: coordinate i
// is the distance to reference object i, the filter is an unweighted L1,
// and embedding costs one exact distance per dimension.
func LipschitzMethod[T any](name string, lm *lipschitz.Model[T], db, queries []T, gt *space.GroundTruth, ks, dimsGrid []int) (*Method, error) {
	dbVecs := make([][]float64, len(db))
	for i, x := range db {
		dbVecs[i] = lm.Embed(x)
	}
	qVecs := make([][]float64, len(queries))
	for i, q := range queries {
		qVecs[i] = lm.Embed(q)
	}
	m := &Method{Name: name, Ks: append([]int(nil), ks...), DBSize: len(db)}
	for _, d := range cleanGrid(dimsGrid, lm.Dims()) {
		de, err := EvaluateDim(sliceVecs(dbVecs, d), sliceVecs(qVecs, d), nil, d, gt, ks)
		if err != nil {
			return nil, fmt.Errorf("eval: %s at d=%d: %w", name, d, err)
		}
		m.Entries = append(m.Entries, de)
	}
	if len(m.Entries) == 0 {
		return nil, fmt.Errorf("eval: no evaluable dimensionalities for %s", name)
	}
	return m, nil
}

// cleanGrid sorts, dedupes, and clips the grid to [1, maxDims].
func cleanGrid(grid []int, maxDims int) []int {
	out := make([]int, 0, len(grid))
	seen := map[int]bool{}
	for _, d := range grid {
		if d >= 1 && d <= maxDims && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

func sliceVecs(vecs [][]float64, d int) [][]float64 {
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		out[i] = v[:d]
	}
	return out
}

// DefaultDimsGrid returns the dimensionality sweep used by the experiments:
// 1, 2, 4, ..., up to maxDims (always including maxDims).
func DefaultDimsGrid(maxDims int) []int {
	var grid []int
	for d := 1; d < maxDims; d *= 2 {
		grid = append(grid, d)
	}
	if maxDims >= 1 {
		grid = append(grid, maxDims)
	}
	return grid
}
