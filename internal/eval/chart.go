package eval

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderChart draws the figure series as an ASCII chart with a log-scale
// cost axis — the same presentation as the paper's Figs. 4–6. Each method
// is plotted with the first letter of its name; cells claimed by several
// methods show '*'. height is the number of chart rows (default 12 when
// <= 0).
func RenderChart(w io.Writer, title string, series []Series, height int) {
	fmt.Fprintf(w, "%s\n", title)
	if len(series) == 0 || len(series[0].Ks) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if height <= 0 {
		height = 12
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, c := range s.Costs {
			if c <= 0 {
				continue
			}
			v := float64(c)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintln(w, "  (no positive costs)")
		return
	}
	if hi <= lo {
		hi = lo * 2
	}
	logLo, logHi := math.Log(lo), math.Log(hi)

	cols := len(series[0].Ks)
	colWidth := 4
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	rowOf := func(cost int) int {
		frac := (math.Log(float64(cost)) - logLo) / (logHi - logLo)
		r := int(math.Round(frac * float64(height-1)))
		// Row 0 is the top (highest cost).
		return height - 1 - clampInt(r, 0, height-1)
	}
	marks := chartMarks(series)
	for si, s := range series {
		mark := marks[si]
		for i, c := range s.Costs {
			if c <= 0 {
				continue
			}
			r := rowOf(c)
			pos := i*colWidth + colWidth/2
			switch grid[r][pos] {
			case ' ':
				grid[r][pos] = mark
			case mark:
			default:
				grid[r][pos] = '*'
			}
		}
	}

	// Y-axis labels on the left: cost values at the top, middle, bottom.
	label := func(r int) string {
		frac := float64(height-1-r) / float64(height-1)
		v := math.Exp(logLo + frac*(logHi-logLo))
		return fmt.Sprintf("%8.0f", v)
	}
	for r := 0; r < height; r++ {
		var axis string
		if r == 0 || r == height-1 || r == height/2 {
			axis = label(r)
		} else {
			axis = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "%s |%s\n", axis, grid[r])
	}
	// X-axis: k values.
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", cols*colWidth))
	var xs strings.Builder
	for _, k := range series[0].Ks {
		xs.WriteString(fmt.Sprintf("%*d", colWidth, k))
	}
	fmt.Fprintf(w, "%s  %s  (k)\n", strings.Repeat(" ", 8), xs.String())
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si], s.Method))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 8), strings.Join(legend, "  "))
}

// chartMarks assigns each series a distinct plot mark: the first letter of
// the method name not already claimed by an earlier series, falling back
// to digits.
func chartMarks(series []Series) []byte {
	used := map[byte]bool{'*': true}
	marks := make([]byte, len(series))
	for si, s := range series {
		var mark byte
		for i := 0; i < len(s.Method); i++ {
			c := s.Method[i]
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			if (c >= 'A' && c <= 'Z') && !used[c] {
				mark = c
				break
			}
		}
		if mark == 0 {
			for d := byte('0'); d <= '9'; d++ {
				if !used[d] {
					mark = d
					break
				}
			}
		}
		if mark == 0 {
			mark = '?'
		}
		used[mark] = true
		marks[si] = mark
	}
	return marks
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
