package qse

import (
	"reflect"
	"runtime"
	"testing"
)

// withGOMAXPROCS runs f under the given GOMAXPROCS setting and restores the
// previous value. Setting it above the machine's core count is fine: the
// fork-join helpers key off GOMAXPROCS, so the parallel code paths are
// exercised even on a single-CPU test box.
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestDeterminismAcrossGOMAXPROCS is the contract the whole parallel
// retrieval engine is built on: same seed + same inputs ⇒ byte-identical
// Train / Search / SearchBatch results no matter how many workers run them.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	db := testDB(21, 400)
	queries := db[:25]
	cfg := testConfig()
	cfg.Triples = 5000 // above the boosting Step parallel threshold

	type outcome struct {
		rounds  int
		trErr   float64
		results [][]Result
		stats   []SearchStats
		batch   [][]Result
	}
	run := func() outcome {
		model, err := Train(db, l2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := NewIndex(model, db, l2)
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		o.rounds = model.Report().Rounds
		o.trErr = model.Report().TrainingError
		for _, q := range queries {
			res, st, err := ix.Search(q, 5, 40)
			if err != nil {
				t.Fatal(err)
			}
			o.results = append(o.results, res)
			o.stats = append(o.stats, st)
		}
		batch, _, err := ix.SearchBatch(queries, 5, 40)
		if err != nil {
			t.Fatal(err)
		}
		o.batch = batch
		return o
	}

	var serial, parallel outcome
	withGOMAXPROCS(1, func() { serial = run() })
	withGOMAXPROCS(8, func() { parallel = run() })

	if serial.rounds != parallel.rounds || serial.trErr != parallel.trErr {
		t.Fatalf("training diverged: GOMAXPROCS=1 (rounds=%d err=%v) vs GOMAXPROCS=8 (rounds=%d err=%v)",
			serial.rounds, serial.trErr, parallel.rounds, parallel.trErr)
	}
	if !reflect.DeepEqual(serial.results, parallel.results) {
		t.Error("Search results differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
	if !reflect.DeepEqual(serial.stats, parallel.stats) {
		t.Error("Search stats differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
	if !reflect.DeepEqual(serial.batch, parallel.batch) {
		t.Error("SearchBatch results differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
	if !reflect.DeepEqual(serial.batch, serial.results) {
		t.Error("SearchBatch differs from sequential Search on the same queries")
	}
}

// TestTrainWorkersBitIdentical pins the Workers knob specifically: a
// caller-capped worker count must train the exact same model as serial.
func TestTrainWorkersBitIdentical(t *testing.T) {
	db := testDB(22, 300)
	q := []float64{0.4, 0.6}

	search := func(workers int) ([]Result, TrainReport) {
		cfg := testConfig()
		cfg.Workers = workers
		model, err := Train(db, l2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := NewIndex(model, db, l2)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := ix.Search(q, 3, 30)
		if err != nil {
			t.Fatal(err)
		}
		return res, model.Report()
	}

	res1, rep1 := search(1)
	res8, rep8 := search(8)
	if !reflect.DeepEqual(rep1, rep8) {
		t.Errorf("reports differ: Workers=1 %+v vs Workers=8 %+v", rep1, rep8)
	}
	if !reflect.DeepEqual(res1, res8) {
		t.Errorf("results differ: Workers=1 %v vs Workers=8 %v", res1, res8)
	}
}

func TestSearchBatchValidation(t *testing.T) {
	db := testDB(23, 150)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(model, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.SearchBatch(db[:3], 0, 10); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := ix.SearchBatch(db[:3], 5, 3); err == nil {
		t.Error("p < k should error")
	}
	res, stats, err := ix.SearchBatch(nil, 1, 10)
	if err != nil || len(res) != 0 || len(stats) != 0 {
		t.Errorf("empty batch: res=%v stats=%v err=%v", res, stats, err)
	}
}
