package qse_test

import (
	"fmt"
	"math"

	"qse"
)

// manhattanish is a toy expensive distance for the examples: Euclidean
// distance over 2D points.
func exampleDist(a, b [2]float64) float64 {
	return math.Hypot(a[0]-b[0], a[1]-b[1])
}

// exampleDB is a tiny deterministic database: points on a grid.
func exampleDB() [][2]float64 {
	var db [][2]float64
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			db = append(db, [2]float64{float64(i) / 11, float64(j) / 11})
		}
	}
	return db
}

// Train a query-sensitive embedding and run one filter-and-refine query.
func Example() {
	db := exampleDB()
	cfg := qse.DefaultTrainConfig()
	cfg.Rounds = 12
	cfg.Candidates = 24
	cfg.TrainingPool = 60
	cfg.Triples = 800
	cfg.EmbeddingsPerRound = 20
	cfg.IntervalsPerEmbedding = 4
	cfg.K1 = 5
	cfg.Seed = 1

	model, err := qse.Train(db, exampleDist, cfg)
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	index, err := qse.NewIndex(model, db, exampleDist)
	if err != nil {
		fmt.Println("index:", err)
		return
	}
	// The query sits exactly on grid point (5/11, 7/11) = index 5*12+7.
	results, _, err := index.Search([2]float64{5.0 / 11, 7.0 / 11}, 1, 20)
	if err != nil {
		fmt.Println("search:", err)
		return
	}
	fmt.Println("nearest index:", results[0].Index, "distance:", results[0].Distance)
	// Output:
	// nearest index: 67 distance: 0
}

// The exact-distance budget of a query is embedding cost plus refine
// candidates — the paper's cost model.
func ExampleSearchStats_Total() {
	st := qse.SearchStats{EmbedDistances: 40, RefineDistances: 200}
	fmt.Println(st.Total())
	// Output:
	// 240
}

// Variants are named as in the paper's Table 1.
func ExampleVariant_String() {
	fmt.Println(qse.SeQS, qse.SeQI, qse.RaQS, qse.RaQI)
	// Output:
	// Se-QS Se-QI Ra-QS Ra-QI
}
