package qse

import (
	"bytes"
	"math"
	"testing"

	"qse/internal/chamfer"
	"qse/internal/digits"
	"qse/internal/stats"
)

func l2(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func testConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Rounds = 20
	cfg.Candidates = 30
	cfg.TrainingPool = 60
	cfg.Triples = 1200
	cfg.EmbeddingsPerRound = 25
	cfg.IntervalsPerEmbedding = 5
	cfg.Seed = 1
	return cfg
}

func testDB(seed int64, n int) [][]float64 {
	rng := stats.NewRand(seed)
	centers := make([][]float64, 8)
	for i := range centers {
		centers[i] = []float64{rng.Float64(), rng.Float64()}
	}
	db := make([][]float64, n)
	for i := range db {
		c := centers[i%len(centers)]
		db[i] = []float64{c[0] + rng.NormFloat64()*0.05, c[1] + rng.NormFloat64()*0.05}
	}
	return db
}

func TestVariantStrings(t *testing.T) {
	cases := map[Variant]string{SeQS: "Se-QS", SeQI: "Se-QI", RaQS: "Ra-QS", RaQI: "Ra-QI"}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still print")
	}
	if _, err := Train(testDB(1, 100), l2, TrainConfig{Variant: Variant(99)}); err == nil {
		t.Error("unknown variant should fail Train")
	}
}

func TestTrainAndSearch(t *testing.T) {
	db := testDB(2, 300)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := model.Report()
	if rep.Variant != "Se-QS" || rep.Rounds == 0 || rep.PreprocessedDistances == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.TrainingError >= 0.5 {
		t.Errorf("training error %v", rep.TrainingError)
	}
	if model.Dims() <= 0 || model.EmbedCost() <= 0 {
		t.Fatal("degenerate model")
	}

	ix, err := NewIndex(model, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 300 {
		t.Errorf("Size = %d", ix.Size())
	}
	q := []float64{db[0][0] + 0.01, db[0][1] - 0.01}
	res, st, err := ix.Search(q, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	if st.Total() != model.EmbedCost()+30 {
		t.Errorf("stats %+v, want embed %d + 30", st, model.EmbedCost())
	}
	// Approximate search with generous p should find the true NN here.
	exact, bst := ix.BruteForce(q, 1)
	if res[0].Index != exact[0].Index {
		t.Errorf("missed true NN: got %d want %d", res[0].Index, exact[0].Index)
	}
	if bst.Total() != len(db) {
		t.Errorf("brute force cost %d", bst.Total())
	}
	if st.Total() >= bst.Total() {
		t.Errorf("filter-and-refine (%d) not cheaper than brute force (%d)", st.Total(), bst.Total())
	}
}

func TestSearchErrors(t *testing.T) {
	db := testDB(3, 120)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(model, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search([]float64{0, 0}, 0, 10); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := ix.Search([]float64{0, 0}, 10, 5); err == nil {
		t.Error("p<k should error")
	}
	if _, err := NewIndex[[]float64](nil, db, l2); err == nil {
		t.Error("nil model should error")
	}
}

func TestEmbedQueryWeights(t *testing.T) {
	db := testDB(4, 200)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := model.Embed(db[0])
	if len(v) != model.Dims() {
		t.Fatalf("embed len %d, dims %d", len(v), model.Dims())
	}
	w := model.QueryWeights(v)
	if len(w) != model.Dims() {
		t.Fatalf("weights len %d", len(w))
	}
	for _, x := range w {
		if x < 0 {
			t.Fatal("negative weight")
		}
	}
}

func TestSaveLoad(t *testing.T) {
	db := testDB(5, 200)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.4}
	v1, v2 := model.Embed(q), loaded.Embed(q)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("loaded model embeds differently")
		}
	}
}

func TestDynamicAddAndDrift(t *testing.T) {
	db := testDB(6, 200)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(model, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 201 {
		t.Errorf("Size = %d", ix.Size())
	}
	res, _, err := ix.Search([]float64{0.5, 0.5}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index != 200 || res[0].Distance != 0 {
		t.Errorf("added object not found: %+v", res[0])
	}

	drift, err := model.DriftError(db, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if drift >= 0.5 {
		t.Errorf("drift %v on training distribution", drift)
	}
}

func TestAllVariantsTrain(t *testing.T) {
	db := testDB(7, 200)
	for _, v := range []Variant{SeQS, SeQI, RaQS, RaQI} {
		cfg := testConfig()
		cfg.Variant = v
		cfg.Rounds = 8
		model, err := Train(db, l2, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if model.Report().Variant != v.String() {
			t.Errorf("report variant %q for %v", model.Report().Variant, v)
		}
	}
}

func TestFastMapBaseline(t *testing.T) {
	db := testDB(8, 200)
	fm, err := TrainFastMap(db, l2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Dims() <= 0 || fm.EmbedCost() != 2*fm.Dims() {
		t.Fatalf("dims %d cost %d", fm.Dims(), fm.EmbedCost())
	}
	ix, err := NewFastMapIndex(fm, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{db[3][0] + 0.005, db[3][1]}
	res, st, err := ix.Search(q, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := ix.BruteForce(q, 1)
	if res[0].Index != exact[0].Index {
		t.Errorf("FastMap index missed NN")
	}
	if st.EmbedDistances != fm.EmbedCost() {
		t.Errorf("stats %+v", st)
	}
	if _, err := NewFastMapIndex[[]float64](nil, db, l2); err == nil {
		t.Error("nil model should error")
	}
	if v := fm.Embed(db[0]); len(v) != fm.Dims() {
		t.Errorf("embed len %d", len(v))
	}
}

func TestTrainInvalidConfig(t *testing.T) {
	db := testDB(9, 50)
	cfg := testConfig()
	cfg.Rounds = -1
	if _, err := Train(db, l2, cfg); err == nil {
		t.Error("invalid config should error")
	}
}

// Domain independence: the same public API works on raw digit images under
// the chamfer distance — a different non-metric oracle than the shape
// context used by the experiments (Sec. 10 names both).
func TestChamferImageSpace(t *testing.T) {
	gen := digits.NewGenerator(digits.Config{}, stats.NewRand(51))
	ds, err := gen.GenerateBalancedDataset(200)
	if err != nil {
		t.Fatal(err)
	}
	oracle := chamfer.NewOracle(ds.Images, 0.5)
	dist := func(a, b *digits.Image) float64 { return oracle.Distance(a, b) }

	cfg := testConfig()
	cfg.Rounds = 16
	model, err := Train(ds.Images, dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(model, ds.Images, dist)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh queries; recall against brute force with a generous p.
	qs, err := gen.GenerateBalancedDataset(20)
	if err != nil {
		t.Fatal(err)
	}
	var hits, labelHits int
	for qi, q := range qs.Images {
		res, _, err := ix.Search(q, 1, 40)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := ix.BruteForce(q, 1)
		if res[0].Index == exact[0].Index {
			hits++
		}
		if ds.Labels[res[0].Index] == qs.Labels[qi] {
			labelHits++
		}
	}
	if hits < 14 {
		t.Errorf("1-NN recall %d/20 under chamfer distance", hits)
	}
	if labelHits < 14 {
		t.Errorf("label agreement %d/20 under chamfer distance", labelHits)
	}
}
