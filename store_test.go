package qse

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestPublicStoreRoundTrip drives the public Store API end to end: a
// store built from a trained model answers exactly like the plain Index,
// and a saved bundle reopens with bit-identical results.
func TestPublicStoreRoundTrip(t *testing.T) {
	db := testDB(3, 120)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	index, err := NewIndex(model, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(model, db, l2, GobCodec[[]float64]())
	if err != nil {
		t.Fatal(err)
	}

	queries := testDB(9, 12)
	for qi, q := range queries {
		fromIndex, ist, err := index.Search(q, 4, 20)
		if err != nil {
			t.Fatal(err)
		}
		fromStore, sst, err := st.Search(q, 4, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(fromIndex) != len(fromStore) {
			t.Fatalf("query %d: %d vs %d results", qi, len(fromIndex), len(fromStore))
		}
		// A fresh store's IDs coincide with database positions.
		for i := range fromIndex {
			if uint64(fromIndex[i].Index) != fromStore[i].ID || fromIndex[i].Distance != fromStore[i].Distance {
				t.Fatalf("query %d result %d: index %+v vs store %+v", qi, i, fromIndex[i], fromStore[i])
			}
		}
		if ist != sst {
			t.Fatalf("query %d stats differ: %+v vs %+v", qi, ist, sst)
		}
	}

	path := filepath.Join(t.TempDir(), "public.bundle")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenStore(path, l2, GobCodec[[]float64]())
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, _, _ := st.Search(q, 4, 20)
		got, _, err := reopened.Search(q, 4, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: reopened store differs:\n got %v\nwant %v", qi, got, want)
		}
	}
	batch, _, err := reopened.SearchBatch(queries, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		single, _, _ := reopened.Search(q, 4, 20)
		if !reflect.DeepEqual(batch[qi], single) {
			t.Fatalf("batch query %d differs from single search", qi)
		}
	}

	// Stable IDs across mutation: remove an early object, later IDs keep
	// resolving to the same objects.
	obj, ok := reopened.Get(100)
	if !ok {
		t.Fatal("Get(100) missing")
	}
	if err := reopened.Remove(5); err != nil {
		t.Fatal(err)
	}
	after, ok := reopened.Get(100)
	if !ok || !reflect.DeepEqual(obj, after) {
		t.Fatal("ID 100 changed identity after removing ID 5")
	}
	id, err := reopened.Add([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 120 {
		t.Fatalf("Add assigned ID %d, want 120", id)
	}
	stats := reopened.Stats()
	if stats.Size != 120 || stats.Generation != 2 || stats.NextID != 121 {
		t.Fatalf("stats %+v, want size 120, generation 2, next 121", stats)
	}
}

// TestPublicShardedStore drives the WithShards option through the public
// API: identical answers to the unsharded store, per-shard stats, and a
// sharded-layout bundle that OpenStore reads back transparently.
func TestPublicShardedStore(t *testing.T) {
	db := testDB(5, 130)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewStore(model, db, l2, GobCodec[[]float64]())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewStore(model, db, l2, GobCodec[[]float64](), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(model, db, l2, GobCodec[[]float64](), WithShards(0)); err == nil {
		t.Fatal("WithShards(0) must error, not silently build an unsharded store")
	}
	if _, err := NewStore(model, db, l2, GobCodec[[]float64](), WithShards(-2)); err == nil {
		t.Fatal("WithShards(-2) must error")
	}
	if got := sharded.Stats().Shards; got != 4 {
		t.Fatalf("Stats().Shards = %d, want 4", got)
	}
	if detail := sharded.ShardStats(); len(detail) != 4 {
		t.Fatalf("ShardStats has %d rows, want 4", len(detail))
	} else if plain.ShardStats() != nil {
		t.Fatal("unsharded store should report no shard detail")
	}

	queries := testDB(11, 10)
	for qi, q := range queries {
		want, wst, err := plain.Search(q, 4, 20)
		if err != nil {
			t.Fatal(err)
		}
		got, gst, err := sharded.Search(q, 4, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) || gst != wst {
			t.Fatalf("query %d: sharded %v %+v != plain %v %+v", qi, got, gst, want, wst)
		}
	}

	// Mutate, persist the sharded layout, reopen through the same
	// OpenStore call an unsharded bundle uses.
	id, err := sharded.Add([]float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if id != 130 {
		t.Fatalf("Add assigned ID %d, want 130", id)
	}
	if err := sharded.Remove(7); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sharded.bundle")
	if err := sharded.Save(path); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenStore(path, l2, GobCodec[[]float64]())
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Stats().Shards; got != 4 {
		t.Fatalf("reopened Shards = %d, want 4", got)
	}
	for qi, q := range queries {
		want, _, _ := sharded.Search(q, 4, 20)
		got, _, err := reopened.Search(q, 4, 20)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: reopened sharded store differs (err %v)", qi, err)
		}
	}
	if _, ok := reopened.Get(7); ok {
		t.Fatal("removed ID 7 resurfaced after sharded reopen")
	}
	if next, err := reopened.Add([]float64{0.1, 0.9}); err != nil || next != 131 {
		t.Fatalf("post-reopen Add: id %d err %v, want 131", next, err)
	}
}

// TestIndexRemove covers the newly exposed Index.Remove: order-preserving
// shift, size accounting, and range errors.
func TestIndexRemove(t *testing.T) {
	db := testDB(4, 100)
	model, err := Train(db, l2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	index, err := NewIndex(model, db, l2)
	if err != nil {
		t.Fatal(err)
	}
	if err := index.Remove(100); err == nil {
		t.Fatal("Remove past the end should fail")
	}
	if err := index.Remove(-1); err == nil {
		t.Fatal("Remove(-1) should fail")
	}
	target := db[50]
	if err := index.Remove(0); err != nil {
		t.Fatal(err)
	}
	if index.Size() != 99 {
		t.Fatalf("size %d after Remove, want 99", index.Size())
	}
	// The object formerly at position 50 now sits at 49 and is still its
	// own nearest neighbor.
	res, _, err := index.Search(target, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Index != 49 || res[0].Distance != 0 {
		t.Fatalf("post-remove self-search: %+v", res)
	}
}
